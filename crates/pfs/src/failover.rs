//! Declustered parity and server failover: degraded-mode reads, redirected
//! writes, and the online rebuild that runs when a crashed server returns.
//!
//! # Layout
//!
//! The data layout is untouched: stripe `k` still lives on server
//! `k mod N`, so a parity-off file system is byte- and timing-identical to
//! one built before this module existed. Parity is an *overlay*: the data
//! stripes are grouped into rows of `N-1` consecutive stripes, and because
//! consecutive stripes walk the servers round-robin, each row's stripes
//! occupy `N-1` distinct servers — the one server the row skips stores the
//! row's parity stripe (`XOR` of the row's data stripes), and that server
//! rotates RAID-5-style from row to row. A single server loss therefore
//! costs every row at most one unit, data or parity, and every row remains
//! reconstructable.
//!
//! Parity stripes share the per-file stripe store with data, keyed above
//! [`PARITY_BASE`]; the invariant is `parity[row] = XOR of the row's data
//! stripes' *store* contents`, which holds from the all-zero initial state
//! and is re-established after every data write by recomputing each
//! touched row from the stores (this makes short/partial writes a non-
//! issue: the recompute reflects whatever actually landed).
//!
//! # Determinism
//!
//! Parity maintenance, reconstruction, and rebuild charge virtual time
//! through [`crate::server::Server::aux_write`]/`aux_read`, which bypass
//! the fault decision and the per-server `ops` counter — so a parity-on
//! run draws exactly the `(seed, server_id, ops)` fault sequence of a
//! parity-off run, and a parity-off run pays nothing at all.
//!
//! # Failover protocol
//!
//! The MPI-IO retry ladder escalates an exhausted budget against a crashed
//! server to `ServerLost`; the collective error agreement makes every rank
//! see it at the same operation, after which each rank calls
//! [`PfsFile::mark_server_down`] (idempotent) and retries. While a server
//! is down, its read chunks are XOR-reconstructed from the surviving data
//! and parity, and its write chunks are redirected: the payload is poked
//! into its (logically current) store, the extent is logged, and
//! durability comes from the parity written to the survivors. The first
//! operation whose start time falls past the crash window's restart
//! triggers [`PfsFile::maybe_rebuild`], which replays the logged extents
//! (timed reads on survivors, timed writes on the returning server) and
//! refreshes the parity rows the returning server owns before clearing
//! the down mark.

use std::collections::BTreeSet;

use hpc_sim::trace::events::layer;
use hpc_sim::{Span, Time, TraceCtx};

use crate::file::PfsFile;
use crate::filesystem::Pfs;
use crate::stripe::StripeChunk;

/// Parity stripes live in the same per-file store as data stripes, keyed
/// above this bit: parity row `r` of a file is stored as stripe key
/// `PARITY_BASE | r`. Data stripe indices come from file offsets divided
/// by the stripe size and stay far below 2^63, so the keyspaces cannot
/// collide.
pub(crate) const PARITY_BASE: u64 = 1 << 63;

impl PfsFile {
    fn fs(&self) -> Pfs {
        Pfs::view(self.inner.clone())
    }

    /// Whether the parity layer is on for this file system
    /// (see [`Pfs::set_parity`]).
    pub fn parity_enabled(&self) -> bool {
        self.fs().parity_enabled()
    }

    /// See [`Pfs::can_failover`].
    pub fn can_failover(&self, server: usize) -> bool {
        self.fs().can_failover(server)
    }

    /// See [`Pfs::mark_server_down`].
    pub fn mark_server_down(&self, server: usize) -> bool {
        self.fs().mark_server_down(server)
    }

    /// See [`Pfs::down_server`].
    pub fn down_server(&self) -> Option<usize> {
        self.fs().down_server()
    }

    /// The server timed I/O must route around right now, if any.
    pub(crate) fn active_down(&self) -> Option<usize> {
        if !self.parity_enabled() {
            return None;
        }
        self.down_server()
    }

    /// If the down server's crash window has ended by `start`, rebuild it
    /// online and return when service may proceed (the rebuild replays the
    /// parity log *before* the server rejoins, so the triggering operation
    /// stalls behind it). No-op returning `start` otherwise; a single
    /// relaxed load when parity is off.
    pub(crate) fn maybe_rebuild(&self, start: Time) -> Time {
        if !self.parity_enabled() {
            return start;
        }
        let down = self.inner.failover.lock().down;
        let Some(s) = down else { return start };
        if self.inner.cfg.faults.is_down(s, start) {
            return start;
        }
        self.rebuild(s, start)
    }

    /// Replay the degraded-mode write log onto the restarted server `s`
    /// and refresh the parity rows it owns, holding the failover lock so
    /// concurrent parity updates and degraded operations wait for the
    /// rebuilt state. Returns the rebuild completion time.
    fn rebuild(&self, s: usize, start: Time) -> Time {
        let cfg = &self.inner.cfg;
        let striping = self.inner.striping;
        let mut fo = self.inner.failover.lock();
        if fo.down != Some(s) {
            // Another rank's operation got here first.
            return start;
        }
        let log = std::mem::take(&mut fo.log);
        let dirty = std::mem::take(&mut fo.parity_dirty);
        let mut done = start;
        let mut bytes = 0u64;

        // 1. Reconstruct every extent written to `s` while it was out from
        //    the surviving data + parity, and write it back to `s`. The
        //    store already holds the payload (degraded writes keep it
        //    current), so the replay doubles as an end-to-end check that
        //    the parity really encodes it.
        for (&file, extents) in &log {
            for &(stripe, off, len) in extents {
                let row = striping.parity_row_of(stripe);
                let mut recon = vec![0u8; len as usize];
                let recon_done =
                    self.xor_row_extent(file, row, Some(stripe), off, &mut recon, start);
                debug_assert_parity(self, file, stripe, off, &recon);
                let mut srv = self.inner.servers[s].lock();
                srv.poke(file, stripe, off, &recon);
                done = done.max(srv.aux_write(&cfg.disk, file, recon_done, len));
                bytes += len;
            }
        }

        // 2. Recompute the parity rows `s` owns whose data changed during
        //    the outage — their stored parity is stale.
        let stripe_size = striping.stripe_size;
        for (&file, rows) in &dirty {
            for &row in rows {
                debug_assert_eq!(striping.parity_server_of(row), s);
                let mut parity = vec![0u8; stripe_size as usize];
                let read_done = self.xor_row_extent(file, row, None, 0, &mut parity, start);
                let mut srv = self.inner.servers[s].lock();
                srv.poke(file, PARITY_BASE | row, 0, &parity);
                done = done.max(srv.aux_write(&cfg.disk, file, read_done, stripe_size));
                bytes += stripe_size;
            }
        }

        fo.down = None;
        drop(fo);

        cfg.profile.record_failover(|f| {
            f.rebuilds += 1;
            f.rebuilt_bytes += bytes;
            f.rebuild_nanos += (done - start).as_nanos();
        });
        let events = &cfg.events;
        if events.is_enabled() {
            if let Some((rank, parent)) = TraceCtx::current() {
                events.record(
                    Span::new(
                        rank,
                        layer::PFS,
                        "rebuild",
                        start.as_nanos(),
                        done.as_nanos(),
                    )
                    .with_id(events.next_id())
                    .with_parent(parent)
                    .with_arg("server", s as u64)
                    .with_arg("bytes", bytes),
                );
            }
        }
        done
    }

    /// Accept a write portion destined to the down server without touching
    /// its engine: the payload is poked into its (logically current)
    /// store and the extent logged for the restart rebuild. Durability
    /// comes from the parity update that follows the data phase — the
    /// caller folds [`PfsFile::update_parity_rows`]'s completion into the
    /// write's completion.
    pub(crate) fn redirect_write_portion(
        &self,
        down: usize,
        chunks: &[StripeChunk],
        slices: &[&[u8]],
    ) {
        let mut bytes = 0u64;
        {
            let mut srv = self.inner.servers[down].lock();
            for (c, d) in chunks.iter().zip(slices) {
                debug_assert_eq!(c.server, down);
                srv.poke(self.id, c.stripe, c.offset_in_stripe, d);
                bytes += c.len;
            }
        }
        let mut fo = self.inner.failover.lock();
        let log = fo.log.entry(self.id).or_default();
        for c in chunks {
            log.push((c.stripe, c.offset_in_stripe, c.len));
        }
        drop(fo);
        self.inner.cfg.profile.record_failover(|f| {
            f.redirected_writes += 1;
            f.redirected_bytes += bytes;
        });
    }

    /// Recompute and write the parity of every touched row after a data
    /// write. Returns when the parity writes are durable (`>= base`).
    ///
    /// The failover lock is held across recompute + store: concurrent
    /// writers to the same row serialize here, and each recomputes *after*
    /// its own data landed, so the last writer's recompute sees every
    /// earlier store write and the stored parity always equals the XOR of
    /// the row's data stripes. Rows whose parity server is down are marked
    /// dirty for the rebuild instead.
    pub(crate) fn update_parity_rows(&self, rows: &BTreeSet<u64>, base: Time) -> Time {
        if rows.is_empty() {
            return base;
        }
        let cfg = &self.inner.cfg;
        let striping = self.inner.striping;
        let stripe_size = striping.stripe_size;
        let mut fo = self.inner.failover.lock();
        let down = fo.down;
        let mut done = base;
        let mut written = 0u64;
        for &row in rows {
            let psrv = striping.parity_server_of(row);
            if down == Some(psrv) {
                fo.parity_dirty.entry(self.id).or_default().insert(row);
                continue;
            }
            let mut parity = vec![0u8; stripe_size as usize];
            self.xor_row_extent_untimed(self.id, row, None, 0, &mut parity);
            let mut srv = self.inner.servers[psrv].lock();
            srv.poke(self.id, PARITY_BASE | row, 0, &parity);
            done = done.max(srv.aux_write(&cfg.disk, self.id, base, stripe_size));
            written += stripe_size;
        }
        drop(fo);
        if written > 0 {
            cfg.profile.record_failover(|f| {
                f.parity_updates += rows.len() as u64;
                f.parity_bytes += written;
            });
        }
        done
    }

    /// Reconstruct the down server's read chunks from the surviving data
    /// and parity: `out[i] = parity ^ XOR(other data stripes of the row)`
    /// over the chunk's in-stripe extent. Charges a timed read on every
    /// contributing survivor and returns the last ship-back time.
    pub(crate) fn reconstruct_read(
        &self,
        down: usize,
        chunks: &[StripeChunk],
        outs: &mut [&mut [u8]],
        arrival: Time,
    ) -> Time {
        let cfg = &self.inner.cfg;
        let striping = self.inner.striping;
        // Hold the failover lock so reconstruction never interleaves with
        // a parity recompute of the same row.
        let fo = self.inner.failover.lock();
        let mut done = arrival;
        let mut bytes = 0u64;
        for (c, out) in chunks.iter().zip(outs.iter_mut()) {
            debug_assert_eq!(c.server, down);
            let row = striping.parity_row_of(c.stripe);
            out.fill(0);
            done = done.max(self.xor_row_extent(
                self.id,
                row,
                Some(c.stripe),
                c.offset_in_stripe,
                out,
                arrival,
            ));
            debug_assert_parity(self, self.id, c.stripe, c.offset_in_stripe, out);
            bytes += c.len;
        }
        drop(fo);
        cfg.profile.record_failover(|f| {
            f.degraded_reads += 1;
            f.reconstructed_bytes += bytes;
        });
        let events = &cfg.events;
        if events.is_enabled() {
            if let Some((rank, parent)) = TraceCtx::current() {
                events.record(
                    Span::new(
                        rank,
                        layer::PFS,
                        "degraded_read",
                        arrival.as_nanos(),
                        done.as_nanos(),
                    )
                    .with_id(events.next_id())
                    .with_parent(parent)
                    .with_arg("server", down as u64)
                    .with_arg("bytes", bytes),
                );
            }
        }
        done
    }

    /// XOR the stores of row `row`'s stripes — the parity stripe plus
    /// every data stripe except `skip` — into `acc` over the extent
    /// `[off, off + acc.len())`, charging a timed read per contributing
    /// server. With `skip = Some(k)` this reconstructs data stripe `k`;
    /// with `skip = None` it recomputes the row's parity (and the parity
    /// stripe itself, stored on the very server being rebuilt, is not a
    /// contributor). Returns the last contributor's ship-back time.
    fn xor_row_extent(
        &self,
        file: u64,
        row: u64,
        skip: Option<u64>,
        off: u64,
        acc: &mut [u8],
        arrival: Time,
    ) -> Time {
        let cfg = &self.inner.cfg;
        let striping = self.inner.striping;
        let len = acc.len() as u64;
        let mut done = arrival;
        let mut buf = vec![0u8; acc.len()];
        if skip.is_some() {
            let psrv = striping.parity_server_of(row);
            let mut srv = self.inner.servers[psrv].lock();
            srv.peek(file, PARITY_BASE | row, off, &mut buf);
            done = done.max(srv.aux_read(&cfg.disk, file, arrival, len));
            drop(srv);
            for (a, b) in acc.iter_mut().zip(&buf) {
                *a ^= *b;
            }
        }
        let first = striping.row_first_stripe(row);
        for k in first..first + striping.parity_row_width() {
            if skip == Some(k) {
                continue;
            }
            let sid = (k % striping.nservers as u64) as usize;
            let mut srv = self.inner.servers[sid].lock();
            srv.peek(file, k, off, &mut buf);
            done = done.max(srv.aux_read(&cfg.disk, file, arrival, len));
            drop(srv);
            for (a, b) in acc.iter_mut().zip(&buf) {
                *a ^= *b;
            }
        }
        done
    }

    /// [`PfsFile::xor_row_extent`] without the timed charges (parity
    /// recompute after a data write: the simulation charges the parity
    /// *write*; the recompute models the controller XOR, not disk reads).
    fn xor_row_extent_untimed(
        &self,
        file: u64,
        row: u64,
        skip: Option<u64>,
        off: u64,
        acc: &mut [u8],
    ) {
        let striping = self.inner.striping;
        let mut buf = vec![0u8; acc.len()];
        if skip.is_some() {
            let psrv = striping.parity_server_of(row);
            self.inner.servers[psrv]
                .lock()
                .peek(file, PARITY_BASE | row, off, &mut buf);
            for (a, b) in acc.iter_mut().zip(&buf) {
                *a ^= *b;
            }
        }
        let first = striping.row_first_stripe(row);
        for k in first..first + striping.parity_row_width() {
            if skip == Some(k) {
                continue;
            }
            let sid = (k % striping.nservers as u64) as usize;
            self.inner.servers[sid].lock().peek(file, k, off, &mut buf);
            for (a, b) in acc.iter_mut().zip(&buf) {
                *a ^= *b;
            }
        }
    }
}

/// Debug check: a reconstructed extent must equal the down server's
/// (logically current) store — the parity overlay and the store agree or
/// the invariant broke somewhere.
fn debug_assert_parity(f: &PfsFile, file: u64, stripe: u64, off: u64, got: &[u8]) {
    if cfg!(debug_assertions) {
        let striping = f.inner.striping;
        let sid = (stripe % striping.nservers as u64) as usize;
        let mut expect = vec![0u8; got.len()];
        f.inner.servers[sid]
            .lock()
            .peek(file, stripe, off, &mut expect);
        debug_assert_eq!(
            expect, got,
            "parity reconstruction diverged from the store (file {file}, stripe {stripe})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::StorageMode;
    use hpc_sim::{CrashSpec, FaultPlan, SimConfig};

    fn parity_pfs(plan: FaultPlan) -> Pfs {
        let mut cfg = SimConfig::test_small();
        cfg.faults = plan;
        cfg.profile.set_enabled(true);
        let fs = Pfs::new(cfg, StorageMode::Full);
        fs.set_parity(true);
        fs
    }

    fn pattern(n: usize, salt: u32) -> Vec<u8> {
        (0..n as u32)
            .map(|i| ((i * 7 + salt) % 251) as u8)
            .collect()
    }

    #[test]
    fn parity_rows_hold_the_xor_of_their_stripes() {
        // test_small: 1 KiB stripes over 4 servers → rows of 3 stripes.
        let fs = parity_pfs(FaultPlan::default());
        let f = fs.create("p");
        let data = pattern(10_000, 3);
        f.write_at(Time::ZERO, 128, &data).as_nanos();
        let striping = f.inner.striping;
        let last_stripe = (128 + data.len() as u64 - 1) / striping.stripe_size;
        for row in 0..=striping.parity_row_of(last_stripe) {
            let mut expect = vec![0u8; striping.stripe_size as usize];
            f.xor_row_extent_untimed(f.id, row, None, 0, &mut expect);
            let psrv = striping.parity_server_of(row);
            let mut got = vec![0u8; striping.stripe_size as usize];
            f.inner.servers[psrv]
                .lock()
                .peek(f.id, PARITY_BASE | row, 0, &mut got);
            assert_eq!(got, expect, "row {row}");
        }
        let fo = fs.inner.cfg.profile.failover_counters();
        assert!(fo.parity_updates > 0);
        assert!(fo.parity_bytes > 0);
    }

    #[test]
    fn degraded_reads_reconstruct_the_down_servers_bytes() {
        // Server 2 crashes at t=1s and never restarts.
        let fs = parity_pfs(FaultPlan {
            crashes: vec![CrashSpec {
                server: 2,
                at: Time::from_secs_f64(1.0),
                restart: None,
            }],
            ..FaultPlan::default()
        });
        let f = fs.create("d");
        let data = pattern(20_000, 11);
        let t = f.try_write_at(Time::ZERO, 0, &data).unwrap();
        assert!(t < Time::from_secs_f64(1.0), "setup must precede the crash");
        assert!(fs.mark_server_down(2));
        assert!(!fs.mark_server_down(2), "idempotent");
        assert_eq!(fs.down_server(), Some(2));
        let mut out = vec![0u8; data.len()];
        let rt = f
            .try_read_at(Time::from_secs_f64(2.0), 0, &mut out)
            .expect("degraded read must succeed without server 2");
        assert!(rt > Time::from_secs_f64(2.0));
        assert_eq!(out, data);
        let fo = fs.inner.cfg.profile.failover_counters();
        assert!(fo.degraded_reads > 0);
        assert!(fo.reconstructed_bytes > 0);
        assert_eq!(fo.epochs, 1);
    }

    #[test]
    fn redirected_writes_then_rebuild_restore_the_server() {
        // Crash server 1 from 1 s to 10 s; write while degraded; the
        // first op past the restart rebuilds and clears the mark.
        let fs = parity_pfs(FaultPlan {
            crashes: vec![CrashSpec {
                server: 1,
                at: Time::from_secs_f64(1.0),
                restart: Some(Time::from_secs_f64(10.0)),
            }],
            ..FaultPlan::default()
        });
        let f = fs.create("r");
        let before = pattern(8_000, 5);
        f.try_write_at(Time::ZERO, 0, &before).unwrap();
        fs.mark_server_down(1);
        // Degraded write overwrites the middle, including server-1 stripes.
        let during = pattern(12_000, 9);
        f.try_write_at(Time::from_secs_f64(2.0), 1024, &during)
            .unwrap();
        let fo = fs.inner.cfg.profile.failover_counters();
        assert!(fo.redirected_writes > 0, "server 1 stripes were redirected");
        assert!(fo.redirected_bytes > 0);
        // Degraded read-back sees the new bytes.
        let mut out = vec![0u8; during.len()];
        f.try_read_at(Time::from_secs_f64(3.0), 1024, &mut out)
            .unwrap();
        assert_eq!(out, during);
        assert_eq!(fs.down_server(), Some(1));
        // Past the restart, the next op triggers the online rebuild.
        let mut out2 = vec![0u8; during.len()];
        let t = f
            .try_read_at(Time::from_secs_f64(11.0), 1024, &mut out2)
            .unwrap();
        assert_eq!(out2, during);
        assert_eq!(fs.down_server(), None, "rebuild clears the mark");
        assert!(t > Time::from_secs_f64(11.0));
        let fo = fs.inner.cfg.profile.failover_counters();
        assert_eq!(fo.rebuilds, 1);
        assert!(fo.rebuilt_bytes > 0);
        assert!(fo.rebuild_nanos > 0);
        // After rebuild the parity invariant holds again everywhere,
        // including rows whose parity lives on server 1.
        let striping = f.inner.striping;
        let last_stripe = (1024 + during.len() as u64 - 1) / striping.stripe_size;
        for row in 0..=striping.parity_row_of(last_stripe) {
            let mut expect = vec![0u8; striping.stripe_size as usize];
            f.xor_row_extent_untimed(f.id, row, None, 0, &mut expect);
            let psrv = striping.parity_server_of(row);
            let mut got = vec![0u8; striping.stripe_size as usize];
            f.inner.servers[psrv]
                .lock()
                .peek(f.id, PARITY_BASE | row, 0, &mut got);
            assert_eq!(got, expect, "row {row}");
        }
    }

    #[test]
    fn parity_off_is_untouched_by_the_overlay() {
        // Same write with and without the (idle) parity machinery wired in
        // completes at the identical virtual time and bytes.
        let cfg = SimConfig::test_small();
        cfg.profile.set_enabled(true);
        let plain = Pfs::new(cfg.clone(), StorageMode::Full);
        let f1 = plain.create("x");
        let data = pattern(9_000, 1);
        let t1 = f1.write_at(Time::ZERO, 64, &data);
        assert!(!plain.parity_enabled());
        assert_eq!(
            cfg.profile.failover_counters(),
            Default::default(),
            "parity-off runs must not touch failover counters"
        );
        // And with parity on the same bytes land, just later (parity
        // writes are part of durability).
        let fs2 = parity_pfs(FaultPlan::default());
        let f2 = fs2.create("x");
        let t2 = f2.write_at(Time::ZERO, 64, &data);
        assert!(t2 >= t1);
        assert_eq!(f1.to_bytes(), f2.to_bytes());
    }

    #[test]
    fn single_server_cannot_enable_parity() {
        let mut cfg = SimConfig::test_small();
        cfg.io_servers = 1;
        let fs = Pfs::new(cfg, StorageMode::Full);
        fs.set_parity(true);
        assert!(!fs.parity_enabled(), "nowhere to decluster");
    }
}
