//! The service cluster: servers, failover state, and sharded metadata
//! with a lifetime that outlives any single file open/close.
//!
//! # Ownership
//!
//! ```text
//!   PfsCluster ─────────────► ClusterInner (Arc)
//!                               ├── servers: Vec<Mutex<Server>>   (NIC+disk engines,
//!                               │       fault plans, queue depths — shared by ALL files)
//!                               ├── meta: MetaShards              (file table, hashed by path)
//!                               ├── failover: FailoverState       (down mark, epoch, parity log)
//!                               └── parity, epochs, stats, cfg
//!        │ mount()
//!        ▼
//!   Pfs (per-file-group view) ──► same ClusterInner
//!        │ create()/open()
//!        ▼
//!   PfsFile (one file)        ──► same ClusterInner
//! ```
//!
//! A [`crate::Pfs`] is a cheap *view*: every mount shares the cluster's
//! server queues, fault determinism `(seed, server_id, ops)` and failover
//! epochs. `Pfs::new` builds a one-mount cluster, which makes the whole
//! pre-cluster API the degenerate case — single-file workloads are byte-
//! and timing-identical to a build without this module.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use hpc_sim::{SimConfig, SimStats};

use crate::filesystem::Pfs;
use crate::meta::MetaShards;
use crate::server::Server;
use crate::storage::StorageMode;
use crate::stripe::Striping;

pub(crate) struct ClusterInner {
    pub cfg: SimConfig,
    pub stats: SimStats,
    pub striping: Striping,
    pub servers: Vec<Mutex<Server>>,
    /// The sharded file table (create/open/delete, per-file sizes).
    pub meta: MetaShards,
    /// Per-file coherence epochs, keyed by file id. A client cache bumps a
    /// file's epoch whenever it publishes dirty pages; other clients compare
    /// their last-seen epoch at synchronization points and invalidate.
    /// Lives here (not in the meta entry) so every handle to the same file
    /// shares one atomic.
    pub epochs: Mutex<HashMap<u64, Arc<AtomicU64>>>,
    /// Whether the declustered-parity redundancy layer is on
    /// (`pnc_parity` hint). Off by default: the parity-off stack is byte-
    /// and timing-identical to a build without the layer.
    pub parity: AtomicBool,
    /// Declared-down server and the degraded-mode write log. Locked
    /// *before* any server mutex (fixed order, no deadlock).
    pub failover: Mutex<FailoverState>,
    /// Mounts ever handed out ([`PfsCluster::mount`] / `Pfs::new`). Never
    /// decremented: a cluster that has ever been shared refuses per-view
    /// timing resets (see `Pfs::reset_timing`) for good.
    pub mounts: AtomicUsize,
}

/// Failover bookkeeping shared by every handle to the cluster.
/// Ordered maps keep rebuild replay deterministic.
#[derive(Default)]
pub(crate) struct FailoverState {
    /// The server the ranks collectively agreed is down, if any.
    pub down: Option<usize>,
    /// Monotonic count of server-down epochs declared (profile fodder and
    /// a cheap "did anything change" check for tests).
    pub epoch: u64,
    /// Per-file extents `(stripe, offset_in_stripe, len)` destined to the
    /// down server while degraded. The payload is covered by parity on the
    /// surviving servers; the restart rebuild replays exactly these
    /// extents onto the returning server.
    pub log: std::collections::BTreeMap<u64, Vec<(u64, u64, u64)>>,
    /// Parity rows *owned by* the down server whose data changed while it
    /// was out: their stored parity is stale and must be recomputed at
    /// rebuild, or a later crash window would reconstruct garbage.
    pub parity_dirty: std::collections::BTreeMap<u64, std::collections::BTreeSet<u64>>,
}

/// Handle to a service cluster. Cheap to clone; all clones and all
/// [`PfsCluster::mount`]ed views share the same servers and namespace.
#[derive(Clone)]
pub struct PfsCluster {
    pub(crate) inner: Arc<ClusterInner>,
}

impl PfsCluster {
    /// Build a cluster with `cfg.io_servers` servers and
    /// `cfg.stripe_size` stripes, constructed once and shared by every
    /// dataset opened against it.
    pub fn new(cfg: SimConfig, mode: StorageMode) -> PfsCluster {
        let striping = Striping::new(cfg.stripe_size as u64, cfg.io_servers);
        let servers = (0..cfg.io_servers)
            .map(|i| {
                Mutex::new(Server::configure(
                    cfg.stripe_size as u64,
                    cfg.io_servers,
                    mode,
                    cfg.service_model(),
                    cfg.faults.clone(),
                    i,
                ))
            })
            .collect();
        PfsCluster {
            inner: Arc::new(ClusterInner {
                cfg,
                stats: SimStats::new(),
                striping,
                servers,
                meta: MetaShards::new(),
                epochs: Mutex::new(HashMap::new()),
                parity: AtomicBool::new(false),
                failover: Mutex::new(FailoverState::default()),
                mounts: AtomicUsize::new(0),
            }),
        }
    }

    /// Hand out a file-system view of this cluster. Sessions mount once
    /// and open their datasets through the view; all views share the
    /// cluster's servers, metadata shards and failover state.
    pub fn mount(&self) -> Pfs {
        self.inner.mounts.fetch_add(1, Ordering::Relaxed);
        Pfs::view(self.inner.clone())
    }

    /// Mounts ever handed out.
    pub fn mounts(&self) -> usize {
        self.inner.mounts.load(Ordering::Relaxed)
    }

    /// Platform configuration.
    pub fn config(&self) -> &SimConfig {
        &self.inner.cfg
    }

    /// I/O operation counters.
    pub fn stats(&self) -> &SimStats {
        &self.inner.stats
    }

    /// The sharded metadata layer (shard lookup and per-shard counters).
    pub fn meta(&self) -> &MetaShards {
        &self.inner.meta
    }

    /// Number of I/O servers.
    pub fn nservers(&self) -> usize {
        self.inner.striping.nservers
    }

    /// **Cluster-wide** timing reset: every server's stage clocks, queue,
    /// position state and fault `ops` counter rewind to virtual time zero,
    /// keeping stored bytes. This is the benchmark-phase reset; it must
    /// only run at a quiescent point (no session mid-I/O), because it
    /// rewinds the `(seed, server_id, ops)` fault sequence for *every*
    /// file on the cluster at once. Per-view `Pfs::reset_timing` refuses
    /// to do this on a shared cluster — call this instead, from the
    /// driver that owns the quiescent point.
    pub fn reset_timing(&self) {
        for s in &self.inner.servers {
            s.lock().reset_timing();
        }
    }

    /// Override every server's bounded admission queue depth (the
    /// `pnc_server_queue_depth` hint, applied at file open; `0` =
    /// unbounded). The servers are shared, so this affects all files.
    pub fn set_queue_depth(&self, depth: usize) {
        for s in &self.inner.servers {
            s.lock().set_queue_depth(depth);
        }
    }

    /// Turn the declustered-parity layer on or off (the `pnc_parity`
    /// hint, applied at file open). Requires at least two servers to
    /// enable — with one there is nowhere to decluster.
    pub fn set_parity(&self, on: bool) {
        let on = on && self.inner.striping.nservers >= 2;
        self.inner.parity.store(on, Ordering::Relaxed);
    }

    /// Whether the parity layer is on.
    pub fn parity_enabled(&self) -> bool {
        self.inner.parity.load(Ordering::Relaxed)
    }

    /// The server currently marked down, if any — a cluster-wide fact:
    /// every open file on the cluster routes around the same down server.
    pub fn down_server(&self) -> Option<usize> {
        self.inner.failover.lock().down
    }

    /// Count of server-down epochs declared so far (cluster-wide).
    pub fn failover_epoch(&self) -> u64 {
        self.inner.failover.lock().epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_sim::Time;

    #[test]
    fn views_share_namespace_and_servers() {
        let cluster = PfsCluster::new(SimConfig::test_small(), StorageMode::Full);
        let a = cluster.mount();
        let b = cluster.mount();
        assert_eq!(cluster.mounts(), 2);
        let f = a.create("shared.nc");
        f.write_at(Time::ZERO, 0, &[7u8; 64]);
        let g = b.open("shared.nc").expect("visible through every view");
        assert_eq!(g.to_bytes(), f.to_bytes());
        assert_eq!(b.list(), vec!["shared.nc"]);
    }

    #[test]
    fn per_view_reset_refused_on_shared_cluster() {
        let cluster = PfsCluster::new(SimConfig::test_small(), StorageMode::Full);
        let a = cluster.mount();
        let _b = cluster.mount();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.reset_timing()));
        assert!(err.is_err(), "shared-cluster per-view reset must panic");
        // The cluster-level reset is the sanctioned path.
        cluster.reset_timing();
    }

    #[test]
    fn single_mount_reset_still_allowed() {
        let fs = Pfs::new(SimConfig::test_small(), StorageMode::Full);
        let f = fs.create("x");
        f.write_at(Time::ZERO, 0, &[1u8; 128]);
        fs.reset_timing();
    }
}
