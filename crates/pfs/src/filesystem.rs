//! The file system object: a namespace of striped files over shared servers.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use hpc_sim::{SimConfig, SimStats};

use crate::file::PfsFile;
use crate::server::Server;
use crate::storage::StorageMode;
use crate::stripe::Striping;

pub(crate) struct PfsInner {
    pub cfg: SimConfig,
    pub stats: SimStats,
    pub striping: Striping,
    pub servers: Vec<Mutex<Server>>,
    pub files: Mutex<HashMap<String, FileEntry>>,
    /// Per-file coherence epochs, keyed by file id. A client cache bumps a
    /// file's epoch whenever it publishes dirty pages; other clients compare
    /// their last-seen epoch at synchronization points and invalidate.
    /// Lives here (not in `FileEntry`) so every handle to the same file
    /// shares one atomic.
    pub epochs: Mutex<HashMap<u64, Arc<AtomicU64>>>,
    /// Whether the declustered-parity redundancy layer is on
    /// (`pnc_parity` hint). Off by default: the parity-off stack is byte-
    /// and timing-identical to a build without the layer.
    pub parity: AtomicBool,
    /// Declared-down server and the degraded-mode write log. Locked
    /// *before* any server mutex (fixed order, no deadlock).
    pub failover: Mutex<FailoverState>,
    next_id: AtomicU64,
}

/// Failover bookkeeping shared by every handle to the file system.
/// Ordered maps keep rebuild replay deterministic.
#[derive(Default)]
pub(crate) struct FailoverState {
    /// The server the ranks collectively agreed is down, if any.
    pub down: Option<usize>,
    /// Monotonic count of server-down epochs declared (profile fodder and
    /// a cheap "did anything change" check for tests).
    pub epoch: u64,
    /// Per-file extents `(stripe, offset_in_stripe, len)` destined to the
    /// down server while degraded. The payload is covered by parity on the
    /// surviving servers; the restart rebuild replays exactly these
    /// extents onto the returning server.
    pub log: std::collections::BTreeMap<u64, Vec<(u64, u64, u64)>>,
    /// Parity rows *owned by* the down server whose data changed while it
    /// was out: their stored parity is stale and must be recomputed at
    /// rebuild, or a later crash window would reconstruct garbage.
    pub parity_dirty: std::collections::BTreeMap<u64, std::collections::BTreeSet<u64>>,
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct FileEntry {
    pub id: u64,
    pub size: u64,
}

/// Handle to the shared parallel file system. Cheap to clone.
#[derive(Clone)]
pub struct Pfs {
    pub(crate) inner: Arc<PfsInner>,
}

impl Pfs {
    /// Create a file system with `cfg.io_servers` servers and
    /// `cfg.stripe_size` stripes.
    pub fn new(cfg: SimConfig, mode: StorageMode) -> Pfs {
        let striping = Striping::new(cfg.stripe_size as u64, cfg.io_servers);
        let servers = (0..cfg.io_servers)
            .map(|i| {
                Mutex::new(Server::configure(
                    cfg.stripe_size as u64,
                    cfg.io_servers,
                    mode,
                    cfg.service_model(),
                    cfg.faults.clone(),
                    i,
                ))
            })
            .collect();
        Pfs {
            inner: Arc::new(PfsInner {
                cfg,
                stats: SimStats::new(),
                striping,
                servers,
                files: Mutex::new(HashMap::new()),
                epochs: Mutex::new(HashMap::new()),
                parity: AtomicBool::new(false),
                failover: Mutex::new(FailoverState::default()),
                next_id: AtomicU64::new(1),
            }),
        }
    }

    /// Platform configuration.
    pub fn config(&self) -> &SimConfig {
        &self.inner.cfg
    }

    /// I/O operation counters.
    pub fn stats(&self) -> &SimStats {
        &self.inner.stats
    }

    /// Create (or truncate) a file and return its handle.
    pub fn create(&self, name: &str) -> PfsFile {
        let mut files = self.inner.files.lock();
        if let Some(old) = files.remove(name) {
            for s in &self.inner.servers {
                s.lock().remove_file(old.id);
            }
            self.inner.epochs.lock().remove(&old.id);
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        files.insert(name.to_string(), FileEntry { id, size: 0 });
        PfsFile::new(self.inner.clone(), id, name.to_string())
    }

    /// Open an existing file.
    pub fn open(&self, name: &str) -> Option<PfsFile> {
        let files = self.inner.files.lock();
        files
            .get(name)
            .map(|e| PfsFile::new(self.inner.clone(), e.id, name.to_string()))
    }

    /// Does `name` exist?
    pub fn exists(&self, name: &str) -> bool {
        self.inner.files.lock().contains_key(name)
    }

    /// Delete a file, freeing its stripes. Returns whether it existed.
    pub fn delete(&self, name: &str) -> bool {
        let mut files = self.inner.files.lock();
        if let Some(e) = files.remove(name) {
            for s in &self.inner.servers {
                s.lock().remove_file(e.id);
            }
            self.inner.epochs.lock().remove(&e.id);
            true
        } else {
            false
        }
    }

    /// Names of all files (sorted, for deterministic listings).
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.files.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Reset all server queues and position state to virtual time zero,
    /// keeping file contents. Benchmarks call this between phases.
    pub fn reset_timing(&self) {
        for s in &self.inner.servers {
            s.lock().reset_timing();
        }
    }

    /// Override every server's bounded admission queue depth (the
    /// `pnc_server_queue_depth` hint, applied at file open; `0` =
    /// unbounded). The servers are shared, so this affects all files.
    pub fn set_queue_depth(&self, depth: usize) {
        for s in &self.inner.servers {
            s.lock().set_queue_depth(depth);
        }
    }

    /// Turn the declustered-parity layer on or off (the `pnc_parity`
    /// hint, applied at file open). Requires at least two servers to
    /// enable — with one there is nowhere to decluster.
    pub fn set_parity(&self, on: bool) {
        let on = on && self.inner.striping.nservers >= 2;
        self.inner.parity.store(on, Ordering::Relaxed);
    }

    /// Whether the parity layer is on.
    pub fn parity_enabled(&self) -> bool {
        self.inner.parity.load(Ordering::Relaxed)
    }

    /// Whether a retry ladder that exhausted against `server` may escalate
    /// to failover instead of surfacing `Exhausted`: parity must be on and
    /// no *other* server may already be down (single-parity survives one
    /// loss). A server that is already marked down can keep failing over —
    /// the mark is idempotent.
    pub fn can_failover(&self, server: usize) -> bool {
        if !self.parity_enabled() {
            return false;
        }
        let fo = self.inner.failover.lock();
        fo.down.map(|d| d == server).unwrap_or(true)
    }

    /// Declare `server` down, opening a degraded-mode epoch. Idempotent:
    /// returns `true` only on the transition. Every rank calls this after
    /// the collective error agreement picks the same `ServerLost`, so the
    /// flip happens at the same operation on all ranks; callers must drive
    /// control flow off the *agreed error*, not this return value.
    pub fn mark_server_down(&self, server: usize) -> bool {
        assert!(server < self.inner.striping.nservers);
        let mut fo = self.inner.failover.lock();
        if fo.down == Some(server) {
            return false;
        }
        assert!(
            fo.down.is_none(),
            "single-parity failover cannot cover a second down server"
        );
        fo.down = Some(server);
        fo.epoch += 1;
        self.inner.cfg.profile.record_failover(|c| c.epochs += 1);
        true
    }

    /// The server currently marked down, if any.
    pub fn down_server(&self) -> Option<usize> {
        self.inner.failover.lock().down
    }

    /// Count of server-down epochs declared so far.
    pub fn failover_epoch(&self) -> u64 {
        self.inner.failover.lock().epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfs() -> Pfs {
        Pfs::new(SimConfig::test_small(), StorageMode::Full)
    }

    #[test]
    fn create_open_delete() {
        let fs = pfs();
        assert!(!fs.exists("a.nc"));
        let f = fs.create("a.nc");
        assert!(fs.exists("a.nc"));
        assert_eq!(f.size(), 0);
        assert!(fs.open("a.nc").is_some());
        assert!(fs.open("missing.nc").is_none());
        assert!(fs.delete("a.nc"));
        assert!(!fs.delete("a.nc"));
        assert!(!fs.exists("a.nc"));
    }

    #[test]
    fn create_truncates_existing() {
        let fs = pfs();
        let f = fs.create("x");
        f.write_at(hpc_sim::Time::ZERO, 0, &[1, 2, 3]);
        assert_eq!(f.size(), 3);
        let f2 = fs.create("x");
        assert_eq!(f2.size(), 0);
        let mut buf = [9u8; 3];
        f2.read_at(hpc_sim::Time::ZERO, 0, &mut buf);
        assert_eq!(buf, [0, 0, 0]);
    }

    #[test]
    fn list_is_sorted() {
        let fs = pfs();
        fs.create("b");
        fs.create("a");
        fs.create("c");
        assert_eq!(fs.list(), vec!["a", "b", "c"]);
    }
}
