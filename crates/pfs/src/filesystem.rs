//! The file system object: a per-mount *view* of a service cluster.
//!
//! `Pfs` used to own the servers and the file table; since the cluster
//! refactor those live in [`crate::cluster::ClusterInner`] with a lifetime
//! that outlives any single open/close. A `Pfs` is now a cheap handle
//! handed out by [`PfsCluster::mount`] — every view shares the cluster's
//! server queues, fault determinism and failover epochs. `Pfs::new`
//! constructs a private one-mount cluster, so single-file callers are
//! untouched and byte-identical to the pre-cluster code.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use hpc_sim::{SimConfig, SimStats};

use crate::cluster::{ClusterInner, PfsCluster};
use crate::file::PfsFile;
use crate::storage::StorageMode;

/// Handle to the shared parallel file system. Cheap to clone; all clones
/// (and all sibling mounts of the same cluster) address the same servers
/// and the same namespace.
#[derive(Clone)]
pub struct Pfs {
    pub(crate) inner: Arc<ClusterInner>,
}

impl Pfs {
    /// Create a private cluster with `cfg.io_servers` servers and
    /// `cfg.stripe_size` stripes, and mount it. The degenerate one-file
    /// path: identical behavior to the pre-cluster `Pfs`.
    pub fn new(cfg: SimConfig, mode: StorageMode) -> Pfs {
        PfsCluster::new(cfg, mode).mount()
    }

    /// A view sharing `inner` without counting a mount (internal handles:
    /// `PfsFile::fs()`, tests poking at the innards).
    pub(crate) fn view(inner: Arc<ClusterInner>) -> Pfs {
        Pfs { inner }
    }

    /// The cluster this view is mounted on (to reach cluster-wide
    /// operations like [`PfsCluster::reset_timing`] or the metadata
    /// shard counters).
    pub fn cluster(&self) -> PfsCluster {
        PfsCluster {
            inner: self.inner.clone(),
        }
    }

    /// Platform configuration.
    pub fn config(&self) -> &SimConfig {
        &self.inner.cfg
    }

    /// I/O operation counters.
    pub fn stats(&self) -> &SimStats {
        &self.inner.stats
    }

    /// Create (or truncate) a file and return its handle. Routed through
    /// the metadata shard owning the path — creates on different shards
    /// never contend.
    pub fn create(&self, name: &str) -> PfsFile {
        let (old, id) = self.inner.meta.create(name);
        if let Some(old) = old {
            for s in &self.inner.servers {
                s.lock().remove_file(old.id);
            }
            self.inner.epochs.lock().remove(&old.id);
        }
        PfsFile::new(self.inner.clone(), id, name.to_string())
    }

    /// Open an existing file.
    pub fn open(&self, name: &str) -> Option<PfsFile> {
        self.inner
            .meta
            .open(name)
            .map(|e| PfsFile::new(self.inner.clone(), e.id, name.to_string()))
    }

    /// Does `name` exist?
    pub fn exists(&self, name: &str) -> bool {
        self.inner.meta.lookup(name).is_some()
    }

    /// Delete a file, freeing its stripes. Returns whether it existed.
    pub fn delete(&self, name: &str) -> bool {
        if let Some(e) = self.inner.meta.remove(name) {
            for s in &self.inner.servers {
                s.lock().remove_file(e.id);
            }
            self.inner.epochs.lock().remove(&e.id);
            true
        } else {
            false
        }
    }

    /// Names of all files (sorted, for deterministic listings).
    pub fn list(&self) -> Vec<String> {
        self.inner.meta.list()
    }

    /// Reset all server queues, position state and fault `ops` counters to
    /// virtual time zero, keeping file contents. Benchmarks call this
    /// between phases.
    ///
    /// This is a **cluster-wide** operation — the view has no private
    /// timing state — so on a cluster that has handed out more than one
    /// mount it would silently rewind *other sessions'* server clocks and
    /// `(seed, server_id, ops)` fault sequences. A shared cluster
    /// therefore refuses the per-view reset (panics); drivers that own a
    /// quiescent point call [`PfsCluster::reset_timing`] instead.
    pub fn reset_timing(&self) {
        let mounts = self.inner.mounts.load(Ordering::Relaxed);
        assert!(
            mounts <= 1,
            "Pfs::reset_timing on a cluster with {mounts} mounts would corrupt other \
             sessions' timing and fault determinism; use PfsCluster::reset_timing \
             from a quiescent point instead"
        );
        self.cluster().reset_timing();
    }

    /// Override every server's bounded admission queue depth (the
    /// `pnc_server_queue_depth` hint, applied at file open; `0` =
    /// unbounded). The servers are shared, so this affects all files.
    pub fn set_queue_depth(&self, depth: usize) {
        self.cluster().set_queue_depth(depth);
    }

    /// Turn the declustered-parity layer on or off (the `pnc_parity`
    /// hint, applied at file open). Requires at least two servers to
    /// enable — with one there is nowhere to decluster.
    pub fn set_parity(&self, on: bool) {
        self.cluster().set_parity(on);
    }

    /// Whether the parity layer is on.
    pub fn parity_enabled(&self) -> bool {
        self.cluster().parity_enabled()
    }

    /// Whether a retry ladder that exhausted against `server` may escalate
    /// to failover instead of surfacing `Exhausted`: parity must be on and
    /// no *other* server may already be down (single-parity survives one
    /// loss). A server that is already marked down can keep failing over —
    /// the mark is idempotent.
    pub fn can_failover(&self, server: usize) -> bool {
        if !self.parity_enabled() {
            return false;
        }
        let fo = self.inner.failover.lock();
        fo.down.map(|d| d == server).unwrap_or(true)
    }

    /// Declare `server` down, opening a degraded-mode epoch — for *every*
    /// file open on the cluster, in the same epoch. Idempotent: returns
    /// `true` only on the transition. Every rank calls this after the
    /// collective error agreement picks the same `ServerLost`, so the flip
    /// happens at the same operation on all ranks; callers must drive
    /// control flow off the *agreed error*, not this return value.
    pub fn mark_server_down(&self, server: usize) -> bool {
        assert!(server < self.inner.striping.nservers);
        let mut fo = self.inner.failover.lock();
        if fo.down == Some(server) {
            return false;
        }
        assert!(
            fo.down.is_none(),
            "single-parity failover cannot cover a second down server"
        );
        fo.down = Some(server);
        fo.epoch += 1;
        self.inner.cfg.profile.record_failover(|c| c.epochs += 1);
        true
    }

    /// The server currently marked down, if any.
    pub fn down_server(&self) -> Option<usize> {
        self.inner.failover.lock().down
    }

    /// Count of server-down epochs declared so far.
    pub fn failover_epoch(&self) -> u64 {
        self.inner.failover.lock().epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfs() -> Pfs {
        Pfs::new(SimConfig::test_small(), StorageMode::Full)
    }

    #[test]
    fn create_open_delete() {
        let fs = pfs();
        assert!(!fs.exists("a.nc"));
        let f = fs.create("a.nc");
        assert!(fs.exists("a.nc"));
        assert_eq!(f.size(), 0);
        assert!(fs.open("a.nc").is_some());
        assert!(fs.open("missing.nc").is_none());
        assert!(fs.delete("a.nc"));
        assert!(!fs.delete("a.nc"));
        assert!(!fs.exists("a.nc"));
    }

    #[test]
    fn create_truncates_existing() {
        let fs = pfs();
        let f = fs.create("x");
        f.write_at(hpc_sim::Time::ZERO, 0, &[1, 2, 3]);
        assert_eq!(f.size(), 3);
        let f2 = fs.create("x");
        assert_eq!(f2.size(), 0);
        let mut buf = [9u8; 3];
        f2.read_at(hpc_sim::Time::ZERO, 0, &mut buf);
        assert_eq!(buf, [0, 0, 0]);
    }

    #[test]
    fn list_is_sorted() {
        let fs = pfs();
        fs.create("b");
        fs.create("a");
        fs.create("c");
        assert_eq!(fs.list(), vec!["a", "b", "c"]);
    }
}
