//! Property-based tests of the parallel file system: striping bijectivity,
//! write/read byte fidelity under arbitrary request sequences, and timing
//! monotonicity.

use proptest::collection::vec;
use proptest::prelude::*;

use hpc_sim::{SimConfig, Time};
use pnetcdf_pfs::{Pfs, StorageMode, Striping};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn stripe_split_covers_exactly(
        stripe in 1u64..512,
        nservers in 1usize..16,
        offset in 0u64..10_000,
        len in 0u64..5_000,
    ) {
        let s = Striping::new(stripe, nservers);
        let chunks = s.split(offset, len);
        // Coverage is exact, ordered, and within stripes.
        let mut pos = offset;
        for c in &chunks {
            prop_assert_eq!(c.file_offset, pos);
            prop_assert_eq!(c.stripe, pos / stripe);
            prop_assert_eq!(c.offset_in_stripe, pos % stripe);
            prop_assert!(c.offset_in_stripe + c.len <= stripe);
            prop_assert_eq!(c.server, ((pos / stripe) % nservers as u64) as usize);
            pos += c.len;
        }
        prop_assert_eq!(pos, offset + len);
        // Only the first and last chunks may be partial stripes.
        for c in chunks.iter().skip(1).rev().skip(1) {
            prop_assert_eq!(c.offset_in_stripe, 0);
            prop_assert_eq!(c.len, stripe);
        }
    }

    #[test]
    fn random_writes_read_back_exactly(
        writes in vec((0u64..4096, 1usize..512, any::<u8>()), 1..16),
    ) {
        let pfs = Pfs::new(SimConfig::test_small(), StorageMode::Full);
        let f = pfs.create("p");
        let mut oracle = vec![0u8; 8192];
        let mut t = Time::ZERO;
        for &(off, len, fill) in &writes {
            let data: Vec<u8> = (0..len).map(|i| fill.wrapping_add(i as u8)).collect();
            t = f.write_at(t, off, &data);
            oracle[off as usize..off as usize + len].copy_from_slice(&data);
        }
        let size = f.size();
        let expect_size = writes.iter().map(|&(o, l, _)| o + l as u64).max().unwrap();
        prop_assert_eq!(size, expect_size);
        prop_assert_eq!(f.to_bytes(), &oracle[..size as usize]);
        // A timed read agrees too.
        let mut buf = vec![0u8; size as usize];
        let t2 = f.read_at(t, 0, &mut buf);
        prop_assert!(t2 > t);
        prop_assert_eq!(buf, &oracle[..size as usize]);
    }

    #[test]
    fn completion_times_are_nearly_monotone_in_length(
        off in 0u64..1024,
        len_a in 1usize..2048,
        extra in 1usize..2048,
    ) {
        let cfg = SimConfig::test_small();
        let f1 = Pfs::new(cfg.clone(), StorageMode::CostOnly).create("a");
        let t_short = f1.write_at(Time::ZERO, off, &vec![0u8; len_a]);
        let f2 = Pfs::new(cfg.clone(), StorageMode::CostOnly).create("b");
        let t_long = f2.write_at(Time::ZERO, off, &vec![0u8; len_a + extra]);
        // A longer write may be *faster* when it happens to complete a
        // stripe and dodge the partial-block read-modify-write — the
        // real-world aligned-write effect. Bound the inversion by the RMW
        // cost of the (at most two) partial stripes.
        let slack = cfg.disk.stream(2 * cfg.stripe_size);
        prop_assert!(t_long + slack >= t_short);
    }

    #[test]
    fn import_equals_timed_write(data in vec(any::<u8>(), 1..4096)) {
        let cfg = SimConfig::test_small();
        let f1 = Pfs::new(cfg.clone(), StorageMode::Full).create("x");
        f1.write_at(Time::ZERO, 0, &data);
        let f2 = Pfs::new(cfg, StorageMode::Full).create("y");
        f2.import_bytes(&data);
        prop_assert_eq!(f1.to_bytes(), f2.to_bytes());
    }
}

#[test]
fn delete_frees_storage_and_handle_reads_zero() {
    let pfs = Pfs::new(SimConfig::test_small(), StorageMode::Full);
    let f = pfs.create("gone");
    f.write_at(Time::ZERO, 0, &[7u8; 128]);
    assert!(pfs.delete("gone"));
    // The stale handle still exists but the data is gone.
    let mut buf = [1u8; 128];
    f.peek_at(0, &mut buf);
    assert_eq!(buf, [0u8; 128]);
    assert!(pfs.open("gone").is_none());
}

#[test]
fn concurrent_writers_do_not_corrupt_disjoint_regions() {
    // Real threads hammering disjoint regions of one file.
    let pfs = Pfs::new(SimConfig::test_small(), StorageMode::Full);
    let f = pfs.create("c");
    std::thread::scope(|s| {
        for r in 0..8u8 {
            let f = f.clone();
            s.spawn(move || {
                let base = r as u64 * 1000;
                for i in 0..10 {
                    let data = vec![r + 1; 100];
                    f.write_at(Time::ZERO, base + i * 100, &data);
                }
            });
        }
    });
    let bytes = f.to_bytes();
    assert_eq!(bytes.len(), 8000);
    for r in 0..8usize {
        assert!(
            bytes[r * 1000..(r + 1) * 1000]
                .iter()
                .all(|&b| b == r as u8 + 1),
            "region {r} corrupted"
        );
    }
}

#[test]
fn metadata_only_keeps_small_writes_drops_large() {
    let pfs = Pfs::new(SimConfig::test_small(), StorageMode::MetadataOnly);
    let f = pfs.create("m");
    f.write_at(Time::ZERO, 0, &[5u8; 256]); // small: kept
    f.write_at(Time::ZERO, 100_000, &vec![9u8; 200_000]); // large: dropped
    let mut small = [0u8; 256];
    f.peek_at(0, &mut small);
    assert_eq!(small, [5u8; 256]);
    let mut big = [1u8; 16];
    f.peek_at(150_000, &mut big);
    assert_eq!(big, [0u8; 16]);
    // Size still tracks the logical extent.
    assert_eq!(f.size(), 300_000);
}
