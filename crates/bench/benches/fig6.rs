//! Criterion wrapper around the Figure 6 workload (scaled down so a
//! `cargo bench` run finishes quickly; the full-scale sweep is the
//! `fig6_scalability` binary). Measures the *wall-clock* cost of driving
//! the simulated stack — a regression guard on the implementation, while
//! the binary reports virtual-time bandwidth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpc_sim::SimConfig;
use pnetcdf::{Dataset, Info, NcType, Version};
use pnetcdf_bench::partition::{block_of, grid_for, Partition};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

fn write_once(dims: (u64, u64, u64), partition: Partition, nprocs: usize) {
    let cfg = SimConfig::sdsc_blue_horizon();
    let pfs = Pfs::new(cfg.clone(), StorageMode::CostOnly);
    let grid = grid_for(partition, nprocs);
    run_world(nprocs, cfg, move |comm| {
        let mut ds = Dataset::create(comm, &pfs, "b.nc", Version::Cdf2, &Info::new()).unwrap();
        let z = ds.def_dim("z", dims.0).unwrap();
        let y = ds.def_dim("y", dims.1).unwrap();
        let x = ds.def_dim("x", dims.2).unwrap();
        let v = ds.def_var("tt", NcType::Float, &[z, y, x]).unwrap();
        ds.enddef().unwrap();
        let (start, count) = block_of(comm.rank(), grid, dims);
        let block = vec![1.0f32; (count[0] * count[1] * count[2]) as usize];
        ds.put_vara_all(v, &start, &count, &block).unwrap();
        ds.close().unwrap();
    });
}

fn bench_fig6(c: &mut Criterion) {
    let dims = (64u64, 64, 64); // 1 MiB f32
    let bytes = dims.0 * dims.1 * dims.2 * 4;
    let mut g = c.benchmark_group("fig6_write_1MiB");
    g.throughput(Throughput::Bytes(bytes));
    g.sample_size(10);
    for partition in [Partition::Z, Partition::X, Partition::ZYX] {
        for nprocs in [1usize, 4] {
            g.bench_with_input(
                BenchmarkId::new(partition.label(), nprocs),
                &nprocs,
                |b, &n| b.iter(|| write_once(dims, partition, n)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
