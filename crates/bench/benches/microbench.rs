//! Microbenchmarks of the zero-copy byte path: chunked byteswap kernels vs
//! the old per-element reference, fused gather+swap packing vs the staged
//! pack-then-swap pair, datatype flattening, and the sieve read-modify-write
//! loop.
//!
//! Besides the usual criterion report lines, this suite writes
//! `BENCH_microbench.json` (honouring `PNETCDF_REPORT_DIR`) with measured
//! throughputs, speedups, and pass/fail gates:
//!
//! - `gate_swap4_ok` / `gate_swap8_ok`: the chunked swap kernels beat the
//!   per-element baseline by >= 2x on 4- and 8-byte elements (full mode).
//! - `gate_pack_ok`: the fused pack beats staged pack+swap by >= 1.3x at a
//!   FLASH-checkpoint-sized noncontiguous access (full mode).
//!
//! `MICROBENCH_QUICK=1` shrinks the working set and relaxes the gates to
//! "not slower" so CI smoke runs stay fast and noise-tolerant.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hpc_sim::trace::Json;
use hpc_sim::{SimConfig, Time};
use pnetcdf_bench::report::report_path;
use pnetcdf_format::swap;
use pnetcdf_format::NcValue;
use pnetcdf_mpi::pack::{pack, pack_with};
use pnetcdf_mpi::{flatten, Datatype};
use pnetcdf_mpio::sieve;
use pnetcdf_pfs::{Pfs, StorageMode};

fn quick() -> bool {
    std::env::var_os("MICROBENCH_QUICK").is_some()
}

/// Working-set size: a FLASH checkpoint moves ~8 MiB per process.
fn working_set() -> usize {
    if quick() {
        1 << 20
    } else {
        8 << 20
    }
}

fn samples() -> u32 {
    if quick() {
        5
    } else {
        20
    }
}

/// Minimum time per iteration over `samples()` runs (after one warmup).
/// The minimum is the least noise-sensitive estimator for short,
/// allocation-free payloads.
fn timeit<O>(mut f: impl FnMut() -> O) -> Duration {
    criterion::black_box(f());
    let mut best = Duration::MAX;
    for _ in 0..samples() {
        let start = Instant::now();
        criterion::black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

fn mb_s(bytes: usize, d: Duration) -> f64 {
    if d.is_zero() {
        return 0.0;
    }
    bytes as f64 / d.as_secs_f64() / 1e6
}

/// A FLASH-like noncontiguous memory description: `rows` rows of
/// `row_bytes` useful bytes with a `gap_bytes` pad between them, all
/// 8-byte aligned so the fused path takes its per-segment branch.
fn flash_subarray(total: usize) -> (Vec<u8>, Datatype) {
    let row = 4096usize; // bytes selected per row
    let gap = 1024usize; // bytes skipped per row
    let rows = total / row;
    let dt = Datatype::vector(rows, row, (row + gap) as i64, Datatype::byte());
    let buf: Vec<u8> = (0..rows * (row + gap)).map(|i| i as u8).collect();
    (buf, dt)
}

// ---- criterion groups ------------------------------------------------------

fn bench_swap_kernels(c: &mut Criterion) {
    let bytes = working_set();
    let src: Vec<u8> = (0..bytes).map(|i| i as u8).collect();
    let mut g = c.benchmark_group("swap");
    g.throughput(Throughput::Bytes(bytes as u64));
    for width in [2usize, 4, 8] {
        g.bench_function(format!("kernel_w{width}"), |b| {
            b.iter(|| swap::swap_to_vec(&src, width))
        });
        g.bench_function(format!("bytewise_w{width}"), |b| {
            b.iter(|| swap::swap_bytewise(&src, width))
        });
    }
    g.finish();
}

fn bench_bulk_codec(c: &mut Criterion) {
    let n = working_set() / 8;
    let vals: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Bytes((n * 8) as u64));
    g.bench_function("slice_to_be_f64", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            f64::slice_to_be(&vals, &mut out);
            out
        })
    });
    let ext = pnetcdf_format::types::to_external(&vals, pnetcdf_format::NcType::Double).unwrap();
    g.bench_function("slice_from_be_f64", |b| b.iter(|| f64::slice_from_be(&ext)));
    g.finish();
}

fn bench_flatten(c: &mut Criterion) {
    let (_, dt) = flash_subarray(working_set());
    let mut g = c.benchmark_group("flatten");
    g.throughput(Throughput::Bytes(dt.size()));
    g.bench_function("vector_rows", |b| b.iter(|| flatten::flatten(&dt)));
    g.finish();
}

fn bench_fused_pack(c: &mut Criterion) {
    let (buf, dt) = flash_subarray(working_set());
    let useful = dt.size() as usize;
    let mut g = c.benchmark_group("pack");
    g.throughput(Throughput::Bytes(useful as u64));
    g.bench_function("staged_pack_then_swap", |b| {
        b.iter(|| swap::swap_to_vec(&pack(&buf, 1, &dt).unwrap(), 8))
    });
    g.bench_function("fused_pack_swap", |b| {
        b.iter(|| pack_with(&buf, 1, &dt, 8, |s, d| swap::swap_copy(s, d, 8)).unwrap())
    });
    g.finish();
}

fn bench_sieve_rmw(c: &mut Criterion) {
    // Holes between every run force the read-modify-write path on every
    // sieve window; the reused window buffer is what this exercises.
    let runs: Vec<(u64, u64)> = (0..256u64).map(|i| (i * 1024, 512)).collect();
    let data = vec![7u8; 256 * 512];
    let mut g = c.benchmark_group("sieve");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.sample_size(10);
    g.bench_function("rmw_write_256_runs", |b| {
        b.iter(|| {
            let f = Pfs::new(SimConfig::test_small(), StorageMode::Full).create("s");
            sieve::write(&f, 64 << 10, true, Time::ZERO, &runs, &data).unwrap()
        })
    });
    g.finish();
}

// ---- gate measurements + BENCH_microbench.json -----------------------------

fn write_bench_json(_c: &mut Criterion) {
    let bytes = working_set();
    let src: Vec<u8> = (0..bytes).map(|i| i as u8).collect();

    let mut swaps = Json::obj();
    let mut speedup = [0.0f64; 3];
    for (i, width) in [2usize, 4, 8].into_iter().enumerate() {
        let kernel = timeit(|| swap::swap_to_vec(&src, width));
        let bytewise = timeit(|| swap::swap_bytewise(&src, width));
        speedup[i] = bytewise.as_secs_f64() / kernel.as_secs_f64().max(1e-12);
        swaps.set(
            &format!("w{width}"),
            Json::obj()
                .with("kernel_mb_s", Json::from(mb_s(bytes, kernel)))
                .with("bytewise_mb_s", Json::from(mb_s(bytes, bytewise)))
                .with("speedup", Json::from(speedup[i])),
        );
    }

    let (buf, dt) = flash_subarray(bytes);
    let useful = dt.size() as usize;
    let staged = timeit(|| swap::swap_to_vec(&pack(&buf, 1, &dt).unwrap(), 8));
    let fused = timeit(|| pack_with(&buf, 1, &dt, 8, |s, d| swap::swap_copy(s, d, 8)).unwrap());
    let pack_speedup = staged.as_secs_f64() / fused.as_secs_f64().max(1e-12);

    let flat = timeit(|| flatten::flatten(&dt));

    let runs: Vec<(u64, u64)> = (0..256u64).map(|i| (i * 1024, 512)).collect();
    let data = vec![7u8; 256 * 512];
    let rmw = timeit(|| {
        let f = Pfs::new(SimConfig::test_small(), StorageMode::Full).create("s");
        sieve::write(&f, 64 << 10, true, Time::ZERO, &runs, &data).unwrap()
    });

    // Full mode asserts the paper-level wins (2x swap, 1.3x pack); quick
    // mode only demands the fast path is not a regression.
    let (swap_floor, pack_floor) = if quick() { (1.0, 1.0) } else { (2.0, 1.3) };
    let gate_swap4 = speedup[1] >= swap_floor;
    let gate_swap8 = speedup[2] >= swap_floor;
    let gate_pack = pack_speedup >= pack_floor;

    let report = Json::obj()
        .with("quick", Json::from(quick()))
        .with("working_set_bytes", Json::from(bytes as u64))
        .with("swap", swaps)
        .with(
            "pack",
            Json::obj()
                .with("useful_bytes", Json::from(useful as u64))
                .with("staged_mb_s", Json::from(mb_s(useful, staged)))
                .with("fused_mb_s", Json::from(mb_s(useful, fused)))
                .with("speedup", Json::from(pack_speedup)),
        )
        .with(
            "flatten",
            Json::obj().with("mb_s", Json::from(mb_s(dt.size() as usize, flat))),
        )
        .with(
            "sieve_rmw",
            Json::obj().with("useful_mb_s", Json::from(mb_s(data.len(), rmw))),
        )
        .with("swap_gate_floor", Json::from(swap_floor))
        .with("pack_gate_floor", Json::from(pack_floor))
        .with("gate_swap4_ok", Json::from(gate_swap4))
        .with("gate_swap8_ok", Json::from(gate_swap8))
        .with("gate_pack_ok", Json::from(gate_pack));

    let path = report_path("BENCH_microbench.json");
    std::fs::write(&path, report.pretty())
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!(
        "bench results: {} (swap4 {:.2}x, swap8 {:.2}x, pack {:.2}x)",
        path.display(),
        speedup[1],
        speedup[2],
        pack_speedup
    );
    assert!(
        gate_swap4 && gate_swap8,
        "swap kernels below the {swap_floor}x gate: w4 {:.2}x, w8 {:.2}x",
        speedup[1],
        speedup[2]
    );
    assert!(
        gate_pack,
        "fused pack below the {pack_floor}x gate: {pack_speedup:.2}x"
    );
}

criterion_group!(
    benches,
    bench_swap_kernels,
    bench_bulk_codec,
    bench_flatten,
    bench_fused_pack,
    bench_sieve_rmw,
    write_bench_json
);
criterion_main!(benches);
