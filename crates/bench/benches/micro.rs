//! Microbenchmarks of the hot paths under the figures: header codec,
//! datatype flattening, layout run generation, and pack/unpack.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pnetcdf_format::{layout, Header, NcType, Version};
use pnetcdf_mpi::{flatten, pack, Datatype};

fn fat_header() -> Header {
    let mut h = Header::new(Version::Cdf1);
    let t = h.add_dim("time", 0).unwrap();
    let z = h.add_dim("z", 64).unwrap();
    let y = h.add_dim("y", 128).unwrap();
    let x = h.add_dim("x", 256).unwrap();
    for i in 0..64 {
        h.add_var(&format!("var_{i:03}"), NcType::Float, &[t, z, y, x])
            .unwrap();
    }
    h
}

fn bench_header_codec(c: &mut Criterion) {
    let h = fat_header();
    let bytes = h.encode();
    let mut g = c.benchmark_group("header");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode_64vars", |b| b.iter(|| h.encode()));
    g.bench_function("decode_64vars", |b| {
        b.iter(|| Header::decode(&bytes).unwrap())
    });
    g.finish();
}

fn bench_flatten(c: &mut Criterion) {
    // An X-partition-like subarray: 256 rows of 64 elements each.
    let sub = Datatype::subarray(&[256, 256], &[256, 64], &[0, 96], Datatype::float()).unwrap();
    let mut g = c.benchmark_group("datatype");
    g.throughput(Throughput::Bytes(sub.size()));
    g.bench_function("flatten_subarray_256rows", |b| {
        b.iter(|| flatten::flatten(&sub))
    });

    let buf = vec![0u8; (sub.extent()) as usize];
    g.bench_function("pack_subarray_256rows", |b| {
        b.iter(|| pack::pack(&buf, 1, &sub).unwrap())
    });
    g.finish();
}

fn bench_access_runs(c: &mut Criterion) {
    let mut h = Header::new(Version::Cdf1);
    let z = h.add_dim("z", 128).unwrap();
    let y = h.add_dim("y", 128).unwrap();
    let x = h.add_dim("x", 128).unwrap();
    h.add_var("tt", NcType::Float, &[z, y, x]).unwrap();
    let l = layout::compute(&mut h, 4).unwrap();
    let mut g = c.benchmark_group("layout");
    g.bench_function("access_runs_x_partition", |b| {
        b.iter(|| layout::access_runs(&h, l.recsize, 0, &[0, 0, 32], &[128, 128, 32], None))
    });
    g.bench_function("access_runs_z_partition", |b| {
        b.iter(|| layout::access_runs(&h, l.recsize, 0, &[32, 0, 0], &[32, 128, 128], None))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_header_codec,
    bench_flatten,
    bench_access_runs
);
criterion_main!(benches);
