//! Criterion wrapper around the Figure 7 workload (miniature FLASH I/O;
//! the full sweep is the `fig7_flashio` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flash_io::{run_flash_io, FlashConfig, IoLibrary, OutputKind};
use hpc_sim::SimConfig;
use pnetcdf_pfs::StorageMode;

fn bench_fig7(c: &mut Criterion) {
    let blocks_per_proc = 4u64;
    let nprocs = 4usize;
    let nxb = 8u64;
    let bytes = blocks_per_proc * nprocs as u64 * nxb.pow(3) * 24 * 8;

    let mut g = c.benchmark_group("fig7_flash_checkpoint");
    g.throughput(Throughput::Bytes(bytes));
    g.sample_size(10);
    for lib in [IoLibrary::Pnetcdf, IoLibrary::Hdf5] {
        g.bench_with_input(BenchmarkId::new(lib.label(), nprocs), &lib, |b, &lib| {
            b.iter(|| {
                run_flash_io(
                    FlashConfig {
                        nxb,
                        nprocs,
                        kind: OutputKind::Checkpoint,
                        lib,
                        blocks_per_proc,
                        attributes: false,
                    },
                    SimConfig::asci_frost(),
                    StorageMode::CostOnly,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
