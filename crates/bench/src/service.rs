//! Session driver: many concurrent client sessions against one shared
//! [`PfsCluster`].
//!
//! The paper's service scenario — one PFS cluster serving a whole machine
//! room — has many independent applications open *different* files on the
//! *same* I/O servers. Each session here is a one-rank MPI world running a
//! real workload through the full netCDF stack: FLASH-style checkpoint
//! writers (`put_vara_all` a record at a time) and strided analytics
//! readers (`get_vars_all` passes over shared datasets).
//!
//! ## Scheduling and determinism
//!
//! Sessions run on OS threads, but execution is serialized by a step gate:
//! exactly one session advances at a time, and the next grant always goes
//! to the session with the **smallest virtual clock** (ties broken by
//! session id). A grant is only handed out once every live session has
//! registered its clock, so the interleaving is a pure function of the
//! virtual times — independent of thread startup order or host load. Same
//! seed, same specs → same grant sequence → byte- and nanosecond-identical
//! results.
//!
//! Virtual clocks all start at zero, so sessions genuinely overlap in
//! *virtual* time: their requests contend for the same server NIC+disk
//! pipelines, and the wait a session spends behind *other* files' traffic
//! surfaces in the per-server `cross_file_stall` counters.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};

use hpc_sim::Time;
use pnetcdf::{Dataset, Info, NcType, Version};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::PfsCluster;

/// What a session does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionKind {
    /// FLASH-style checkpoint writer: creates its own dataset and writes
    /// one record per step.
    CheckpointWriter,
    /// Analytics reader: strided `get_vars_all` passes over a shared,
    /// pre-created dataset.
    StridedReader,
}

/// One client session's workload.
#[derive(Clone, Debug)]
pub struct SessionSpec {
    /// Session id (also the determinism tie-break).
    pub id: usize,
    pub kind: SessionKind,
    /// Dataset path: created by writers, opened read-only by readers.
    /// Several readers naming the same path share that dataset.
    pub dataset: String,
    /// Steps (checkpoint records written, or read passes).
    pub steps: usize,
    /// Doubles per record (one step moves `8 * values_per_step` bytes for
    /// a writer; readers fetch every other value, half that).
    pub values_per_step: usize,
}

/// Per-session outcome.
#[derive(Clone, Debug)]
pub struct SessionResult {
    pub id: usize,
    pub kind: SessionKind,
    pub dataset: String,
    /// Payload bytes this session moved (excluding headers).
    pub bytes: u64,
    /// The session's final virtual clock.
    pub end: Time,
}

impl SessionResult {
    /// Session throughput over its own virtual lifetime, MB/s.
    pub fn mb_s(&self) -> f64 {
        self.bytes as f64 / 1e6 / (self.end.as_nanos().max(1) as f64 / 1e9)
    }
}

/// Outcome of a whole multi-session run.
#[derive(Clone, Debug)]
pub struct ServiceRun {
    pub sessions: Vec<SessionResult>,
    /// Sum of payload bytes over all sessions.
    pub aggregate_bytes: u64,
    /// Latest per-session end clock — the service-level makespan.
    pub makespan: Time,
}

impl ServiceRun {
    /// Aggregate throughput: all sessions' bytes over the makespan, MB/s.
    pub fn aggregate_mb_s(&self) -> f64 {
        self.aggregate_bytes as f64 / 1e6 / (self.makespan.as_nanos().max(1) as f64 / 1e9)
    }

    /// The best per-session throughput in this run.
    pub fn max_session_mb_s(&self) -> f64 {
        self.sessions.iter().map(|s| s.mb_s()).fold(0.0, f64::max)
    }
}

// ---------------------------------------------------------------------------
// The step gate.
// ---------------------------------------------------------------------------

struct GateState {
    /// Sessions waiting for a grant, keyed by (virtual nanos, id).
    ready: BinaryHeap<Reverse<(u64, usize)>>,
    /// The session currently executing a step, if any.
    granted: Option<usize>,
    /// Sessions that called [`StepGate::finish`].
    done: usize,
    nsessions: usize,
}

/// Serializes session steps in minimum-virtual-time order. See the module
/// docs for the determinism argument.
struct StepGate {
    state: Mutex<GateState>,
    cv: Condvar,
}

impl StepGate {
    fn new(nsessions: usize) -> StepGate {
        StepGate {
            state: Mutex::new(GateState {
                ready: BinaryHeap::new(),
                granted: None,
                done: 0,
                nsessions,
            }),
            cv: Condvar::new(),
        }
    }

    /// Grant the smallest-clock waiter — but only once *every* live
    /// session is accounted for (waiting or done), so the pick never
    /// depends on which thread happened to arrive first.
    fn promote(st: &mut GateState) {
        if st.granted.is_none() && st.ready.len() + st.done == st.nsessions {
            if let Some(Reverse((_, id))) = st.ready.pop() {
                st.granted = Some(id);
            }
        }
    }

    /// Release the previous grant (if `id` held one), register at `now`,
    /// and block until granted again. The caller then executes one step
    /// while holding the grant.
    fn turn(&self, id: usize, now: Time) {
        let mut st = self.state.lock().unwrap();
        if st.granted == Some(id) {
            st.granted = None;
        }
        st.ready.push(Reverse((now.as_nanos(), id)));
        Self::promote(&mut st);
        self.cv.notify_all();
        while st.granted != Some(id) {
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Release the grant for good; `id` will not step again.
    fn finish(&self, id: usize) {
        let mut st = self.state.lock().unwrap();
        if st.granted == Some(id) {
            st.granted = None;
        }
        st.done += 1;
        Self::promote(&mut st);
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Workload bodies.
// ---------------------------------------------------------------------------

/// Pre-create the shared analytics datasets readers will scan: one `field`
/// variable of `rows x values_per_step` doubles, filled deterministically.
/// Call before the measured run, then [`PfsCluster::reset_timing`] from
/// that quiescent point so setup traffic doesn't bill the sessions.
pub fn prepare_shared_datasets(
    cluster: &PfsCluster,
    names: &[String],
    rows: usize,
    values_per_step: usize,
) {
    for (di, name) in names.iter().enumerate() {
        let pfs = cluster.mount();
        let name = name.clone();
        run_world(1, cluster.config().clone(), move |comm| {
            let mut ds = Dataset::create(comm, &pfs, &name, Version::Cdf1, &Info::new())
                .expect("create shared dataset");
            let r = ds.def_dim("row", rows as u64).expect("def_dim");
            let c = ds.def_dim("col", values_per_step as u64).expect("def_dim");
            let var = ds
                .def_var("field", NcType::Double, &[r, c])
                .expect("def_var");
            ds.enddef().expect("enddef");
            let buf: Vec<f64> = (0..rows * values_per_step)
                .map(|i| (di * 1_000_000 + i) as f64)
                .collect();
            ds.put_vara_all(var, &[0, 0], &[rows as u64, values_per_step as u64], &buf)
                .expect("fill shared dataset");
            ds.close().expect("close");
        });
    }
}

/// Run every session to completion over the shared cluster. Each spec gets
/// its own mount ([`PfsCluster::mount`]), its own one-rank world, and
/// steps in the gate's deterministic order.
pub fn run_sessions(cluster: &PfsCluster, specs: &[SessionSpec]) -> ServiceRun {
    let gate = StepGate::new(specs.len());
    let sessions: Vec<SessionResult> = std::thread::scope(|scope| {
        let gate = &gate;
        let handles: Vec<_> = specs
            .iter()
            .map(|spec| {
                let pfs = cluster.mount();
                let cfg = cluster.config().clone();
                let spec = spec.clone();
                scope.spawn(move || {
                    let run = run_world(1, cfg, |comm| match spec.kind {
                        SessionKind::CheckpointWriter => {
                            gate.turn(spec.id, comm.now());
                            let mut ds = Dataset::create(
                                comm,
                                &pfs,
                                &spec.dataset,
                                Version::Cdf1,
                                &Info::new(),
                            )
                            .expect("create checkpoint");
                            let s = ds.def_dim("step", spec.steps as u64).expect("def_dim");
                            let c = ds
                                .def_dim("cell", spec.values_per_step as u64)
                                .expect("def_dim");
                            let var = ds
                                .def_var("data", NcType::Double, &[s, c])
                                .expect("def_var");
                            ds.enddef().expect("enddef");
                            let mut bytes = 0u64;
                            for step in 0..spec.steps {
                                gate.turn(spec.id, comm.now());
                                let buf: Vec<f64> = (0..spec.values_per_step)
                                    .map(|i| (spec.id * 7 + step * 3 + i) as f64)
                                    .collect();
                                ds.put_vara_all(
                                    var,
                                    &[step as u64, 0],
                                    &[1, spec.values_per_step as u64],
                                    &buf,
                                )
                                .expect("checkpoint record");
                                bytes += (spec.values_per_step * 8) as u64;
                            }
                            ds.close().expect("close");
                            gate.finish(spec.id);
                            bytes
                        }
                        SessionKind::StridedReader => {
                            gate.turn(spec.id, comm.now());
                            let mut ds =
                                Dataset::open(comm, &pfs, &spec.dataset, true, &Info::new())
                                    .expect("open shared dataset");
                            let var = ds.inq_varid("field").expect("field var");
                            let rowdim = ds.inq_dimid("row").expect("row dim");
                            let rows = ds.inq_dim(rowdim).expect("row dim").1;
                            let half = (spec.values_per_step / 2) as u64;
                            let mut bytes = 0u64;
                            for step in 0..spec.steps {
                                gate.turn(spec.id, comm.now());
                                let row = step as u64 % rows;
                                // Every other value of one row: a strided
                                // analytics slice.
                                let vals: Vec<f64> = ds
                                    .get_vars_all(var, &[row, 0], &[1, half], &[1, 2])
                                    .expect("strided read");
                                bytes += (vals.len() * 8) as u64;
                            }
                            ds.close().expect("close");
                            gate.finish(spec.id);
                            bytes
                        }
                    });
                    SessionResult {
                        id: spec.id,
                        kind: spec.kind,
                        dataset: spec.dataset.clone(),
                        bytes: run.results[0],
                        end: run.makespan,
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let aggregate_bytes = sessions.iter().map(|s| s.bytes).sum();
    let makespan = sessions.iter().map(|s| s.end).max().unwrap_or(Time::ZERO);
    ServiceRun {
        sessions,
        aggregate_bytes,
        makespan,
    }
}

/// A standard mixed fleet: sessions alternate writer/reader; writers get
/// private `ckpt_<i>.nc` datasets, readers share `shared_<j>.nc` round-
/// robin over `nshared` pre-created datasets.
pub fn mixed_specs(
    nsessions: usize,
    nshared: usize,
    steps: usize,
    values_per_step: usize,
) -> (Vec<SessionSpec>, Vec<String>) {
    let shared: Vec<String> = (0..nshared).map(|j| format!("shared_{j}.nc")).collect();
    let specs = (0..nsessions)
        .map(|id| {
            if id % 2 == 0 {
                SessionSpec {
                    id,
                    kind: SessionKind::CheckpointWriter,
                    dataset: format!("ckpt_{id}.nc"),
                    steps,
                    values_per_step,
                }
            } else {
                SessionSpec {
                    id,
                    kind: SessionKind::StridedReader,
                    dataset: shared[(id / 2) % nshared].clone(),
                    steps,
                    values_per_step,
                }
            }
        })
        .collect();
    (specs, shared)
}
