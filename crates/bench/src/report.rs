//! Profile-JSON report files written next to the benchmark text tables.
//!
//! Each figure binary that runs with tracing enabled collects one report
//! object per configuration (the [`hpc_sim::ProfileSnapshot::to_json`]
//! output, per-rank rows included) and writes them all to a single
//! `<binary>.profile.json` file so the phase breakdowns can be inspected
//! without re-running the benchmark.

use std::path::PathBuf;
use std::sync::Once;

use hpc_sim::trace::Json;

/// Destination for report file `name`: `$PNETCDF_REPORT_DIR` if set, else
/// the current directory.
pub fn report_path(name: &str) -> PathBuf {
    match std::env::var_os("PNETCDF_REPORT_DIR") {
        Some(dir) => PathBuf::from(dir).join(name),
        None => PathBuf::from(name),
    }
}

/// Log the resolved report destination once per process, so every run
/// states where its `.profile.json` / `.trace.json` artifacts land.
fn announce_report_dir() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let dir = match std::env::var_os("PNETCDF_REPORT_DIR") {
            Some(d) => PathBuf::from(d),
            None => PathBuf::from("."),
        };
        eprintln!("  report dir: {} (PNETCDF_REPORT_DIR)", dir.display());
    });
}

/// Write `report` to [`report_path`]`(name)` as pretty JSON and announce
/// where it went on stderr (stdout carries the text tables).
pub fn write_report(name: &str, report: &Json) -> PathBuf {
    announce_report_dir();
    let path = report_path(name);
    std::fs::write(&path, report.pretty())
        .unwrap_or_else(|e| panic!("writing report {}: {e}", path.display()));
    eprintln!("  profile report: {}", path.display());
    path
}

/// Write a Chrome `trace_event` export (the [`hpc_sim::TraceSnapshot::to_chrome`]
/// object) to [`report_path`]`(name)`; view it in Perfetto
/// (<https://ui.perfetto.dev>) or `chrome://tracing`.
pub fn write_trace(name: &str, trace: &Json) -> PathBuf {
    announce_report_dir();
    let path = report_path(name);
    std::fs::write(&path, trace.pretty())
        .unwrap_or_else(|e| panic!("writing trace {}: {e}", path.display()));
    eprintln!("  chrome trace: {}", path.display());
    path
}

/// Assert that the critical rank's attributed phase time explains the
/// reported makespan to within `tol` (0.05 = 5%). Every simulated clock
/// advance is charged to exactly one phase, so real coverage should be
/// 1.0; a miss means an attribution hole in some layer.
pub fn check_coverage(report: &Json, tol: f64) {
    let coverage = report
        .get("coverage")
        .and_then(Json::as_f64)
        .expect("report has a coverage field");
    assert!(
        (coverage - 1.0).abs() <= tol,
        "phase attribution covers {:.2}% of the makespan (tolerance {:.0}%)",
        coverage * 100.0,
        tol * 100.0
    );
}
