//! Shared infrastructure for the figure-regeneration harnesses.
//!
//! Every measured chart of the paper has one binary here:
//!
//! | paper figure | binary |
//! |---|---|
//! | Figure 6 (serial vs parallel netCDF, 4 charts) | `fig6_scalability` |
//! | Figure 7 (FLASH I/O, PnetCDF vs HDF5, 6 charts) | `fig7_flashio` |
//!
//! plus ablation binaries for the design decisions discussed in the text:
//! `ablation_collective` (collective vs independent data mode),
//! `ablation_access_strategy` (Figure 2's three approaches),
//! `ablation_hints` (`cb_buffer_size` / `cb_nodes` sweeps),
//! `ablation_header` (rank-0+broadcast header I/O vs every-rank reads), and
//! `ablation_hdf5_overheads` (dataset-count decomposition of the HDF5 gap).

pub mod partition;
pub mod report;
pub mod service;
pub mod table;

pub use partition::{block_of, grid_for, Partition, PARTITIONS};
