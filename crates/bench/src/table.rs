//! Plain-text table/series output matching the layout of the paper's
//! charts, so EXPERIMENTS.md can quote the harness output directly.

/// Print a chart as rows = series, columns = x values.
pub fn print_series(
    title: &str,
    xlabel: &str,
    xs: &[String],
    series: &[(String, Vec<f64>)],
    unit: &str,
) {
    println!("\n## {title}  ({unit})");
    print!("{:<14}", xlabel);
    for x in xs {
        print!("{x:>10}");
    }
    println!();
    for (name, vals) in series {
        print!("{name:<14}");
        for v in vals {
            if v.is_nan() {
                print!("{:>10}", "-");
            } else {
                print!("{v:>10.1}");
            }
        }
        println!();
    }
}

/// Format bytes as a human-readable size.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.1} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(64 << 20), "64.0 MiB");
        assert_eq!(fmt_bytes(1 << 30), "1.0 GiB");
    }
}
