//! The seven 3-D partitioning strategies of the paper's Figure 5.
//!
//! The LBNL test code partitions `tt(Z,Y,X)` along Z, Y, X, ZY, ZX, YX and
//! ZYX. A partition assigns each rank an axis-aligned block; remainders are
//! distributed to the leading ranks along each axis so the blocks tile the
//! array exactly.

/// One of the seven partitioning strategies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Partition {
    Z,
    Y,
    X,
    ZY,
    ZX,
    YX,
    ZYX,
}

/// All seven, in the paper's order.
pub const PARTITIONS: [Partition; 7] = [
    Partition::Z,
    Partition::Y,
    Partition::X,
    Partition::ZY,
    Partition::ZX,
    Partition::YX,
    Partition::ZYX,
];

impl Partition {
    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Partition::Z => "Z",
            Partition::Y => "Y",
            Partition::X => "X",
            Partition::ZY => "ZY",
            Partition::ZX => "ZX",
            Partition::YX => "YX",
            Partition::ZYX => "ZYX",
        }
    }

    /// Which axes are split (z, y, x).
    pub fn mask(self) -> (bool, bool, bool) {
        match self {
            Partition::Z => (true, false, false),
            Partition::Y => (false, true, false),
            Partition::X => (false, false, true),
            Partition::ZY => (true, true, false),
            Partition::ZX => (true, false, true),
            Partition::YX => (false, true, true),
            Partition::ZYX => (true, true, true),
        }
    }
}

/// Near-equal factorization of `n` over `k` axes (largest factor first).
fn factorize(n: u64, k: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(k);
    let mut rem = n;
    for i in 0..k {
        let left = k - i;
        let mut f = (rem as f64).powf(1.0 / left as f64).round() as u64;
        while f > 1 && rem % f != 0 {
            f -= 1;
        }
        out.push(f.max(1));
        rem /= *out.last().unwrap();
    }
    let last = out.len() - 1;
    out[last] *= rem;
    out.sort_unstable_by(|a, b| b.cmp(a));
    out
}

/// Process grid `(pz, py, px)` for `nprocs` ranks under `partition`.
pub fn grid_for(partition: Partition, nprocs: usize) -> (u64, u64, u64) {
    let (mz, my, mx) = partition.mask();
    let k = [mz, my, mx].iter().filter(|&&m| m).count();
    let fs = factorize(nprocs as u64, k);
    let mut grid = [1u64; 3];
    let mut i = 0;
    for (d, m) in [mz, my, mx].into_iter().enumerate() {
        if m {
            grid[d] = fs[i];
            i += 1;
        }
    }
    (grid[0], grid[1], grid[2])
}

/// Remainder-aware 1-D decomposition: rank `i` of `p` over `n` elements.
fn decomp(n: u64, p: u64, i: u64) -> (u64, u64) {
    let base = n / p;
    let rem = n % p;
    (i * base + i.min(rem), base + u64::from(i < rem))
}

/// This rank's `(start, count)` block of an `(nz, ny, nx)` array under the
/// process grid `(pz, py, px)`.
pub fn block_of(
    rank: usize,
    (pz, py, px): (u64, u64, u64),
    (nz, ny, nx): (u64, u64, u64),
) -> ([u64; 3], [u64; 3]) {
    let r = rank as u64;
    let (iz, iy, ix) = (r / (py * px), (r / px) % py, r % px);
    let (sz, cz) = decomp(nz, pz, iz);
    let (sy, cy) = decomp(ny, py, iy);
    let (sx, cx) = decomp(nx, px, ix);
    ([sz, sy, sx], [cz, cy, cx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn grids_multiply_to_nprocs() {
        for p in PARTITIONS {
            for n in [1usize, 2, 3, 4, 6, 8, 12, 16, 32] {
                let (a, b, c) = grid_for(p, n);
                assert_eq!(a * b * c, n as u64, "{p:?} x {n}");
            }
        }
    }

    #[test]
    fn z_partition_splits_only_z() {
        let g = grid_for(Partition::Z, 8);
        assert_eq!(g, (8, 1, 1));
        let g = grid_for(Partition::YX, 8);
        assert_eq!(g.0, 1);
        assert!(g.1 > 1 && g.2 > 1);
    }

    #[test]
    fn blocks_tile_exactly() {
        let dims = (7u64, 9, 13); // awkward sizes with remainders
        for p in PARTITIONS {
            for n in [2usize, 4, 6, 8] {
                let grid = grid_for(p, n);
                let mut seen: HashSet<(u64, u64, u64)> = HashSet::new();
                let mut total = 0u64;
                for r in 0..n {
                    let (s, c) = block_of(r, grid, dims);
                    total += c[0] * c[1] * c[2];
                    for z in s[0]..s[0] + c[0] {
                        for y in s[1]..s[1] + c[1] {
                            for x in s[2]..s[2] + c[2] {
                                assert!(
                                    seen.insert((z, y, x)),
                                    "{p:?}x{n}: cell ({z},{y},{x}) covered twice"
                                );
                            }
                        }
                    }
                }
                assert_eq!(total, dims.0 * dims.1 * dims.2, "{p:?} x {n}");
            }
        }
    }

    #[test]
    fn single_rank_owns_everything() {
        for p in PARTITIONS {
            let grid = grid_for(p, 1);
            let (s, c) = block_of(0, grid, (4, 5, 6));
            assert_eq!(s, [0, 0, 0]);
            assert_eq!(c, [4, 5, 6]);
        }
    }
}
