//! Extension: the attribute writes the paper's benchmark port removed.
//!
//! §5.2: "we modified this benchmark, removed the part of code writing
//! attributes, ported it to PnetCDF". This harness puts them back — four
//! attributes per unknown plus file-level scalars — and measures the cost
//! for both libraries. In PnetCDF all attributes land inside the single
//! header that rank 0 writes at `enddef`; in HDF5 every attribute is a
//! dispersed metadata write plus a synchronization.
//!
//! Usage: `cargo run --release -p pnetcdf-bench --bin ext_attributes`

use flash_io::{run_flash_io, FlashConfig, IoLibrary, OutputKind};
use hpc_sim::SimConfig;
use pnetcdf_bench::table::print_series;
use pnetcdf_pfs::StorageMode;

fn main() {
    let procs = [16usize, 64, 256];
    println!("# Extension: restoring the benchmark's attribute writes");
    println!("# 8x8x8 checkpoint, 80 blocks/proc, Frost-like platform");

    let xs: Vec<String> = procs.iter().map(|p| p.to_string()).collect();
    let mut series = Vec::new();
    let mut slowdown: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
    for (li, lib) in [IoLibrary::Pnetcdf, IoLibrary::Hdf5]
        .into_iter()
        .enumerate()
    {
        for attributes in [false, true] {
            let label = format!(
                "{} {}",
                lib.label(),
                if attributes { "+attrs" } else { "      " }
            );
            let row: Vec<f64> = procs
                .iter()
                .map(|&p| {
                    let res = run_flash_io(
                        FlashConfig {
                            nxb: 8,
                            nprocs: p,
                            kind: OutputKind::Checkpoint,
                            lib,
                            blocks_per_proc: 80,
                            attributes,
                        },
                        SimConfig::asci_frost(),
                        StorageMode::CostOnly,
                    );
                    res.bandwidth_mb_s
                })
                .collect();
            series.push((label, row));
        }
        let base = &series[series.len() - 2].1;
        let with = &series[series.len() - 1].1;
        slowdown[li] = base
            .iter()
            .zip(with)
            .map(|(b, w)| (1.0 - w / b) * 100.0)
            .collect();
    }
    print_series(
        "Checkpoint bandwidth with and without attributes",
        "config",
        &xs,
        &series,
        "MB/s",
    );
    println!(
        "\nbandwidth lost to attributes: PnetCDF {:.1?} %, HDF5 {:.1?} %",
        slowdown[0], slowdown[1]
    );
    println!("(the paper removed attribute writes to isolate data I/O; restoring");
    println!(" them costs PnetCDF almost nothing — they ride in the one header —");
    println!(" while HDF5 pays a metadata write + sync per attribute)");
}
