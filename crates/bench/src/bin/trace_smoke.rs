//! Trace smoke: the 64-rank FLASH checkpoint written with
//! `pnc_trace_events=enable` passed through the MPI_Info hint path.
//!
//! Validates the observability tentpole end to end: the run records spans
//! on every rank covering ≥95% of its wall clock, the Chrome
//! `trace_event` export is well-formed (complete spans only, non-negative
//! durations, metadata/flow events typed correctly), and the critical-path
//! analyzer attributes every collective window to a bounding stage.
//! Artifacts land in `$PNETCDF_REPORT_DIR` (`trace_smoke.trace.json`,
//! `trace_smoke.critical_path.json`).
//!
//! Usage: `cargo run --release -p pnetcdf-bench --bin trace_smoke`

use flash_io::{run_flash_io_mode, FlashConfig, IoLibrary, OutputKind, WriteMode};
use hpc_sim::trace::events::{critical_path, stage};
use hpc_sim::trace::Json;
use hpc_sim::SimConfig;
use pnetcdf_bench::report::{write_report, write_trace};
use pnetcdf_pfs::{Pfs, StorageMode};

const NPROCS: usize = 64;
const BLOCKS_PER_PROC: u64 = 8;

fn main() {
    println!("# Trace smoke: FLASH checkpoint 8x8x8, {NPROCS} procs, pnc_trace_events=enable");
    let config = FlashConfig {
        nxb: 8,
        nprocs: NPROCS,
        kind: OutputKind::Checkpoint,
        lib: IoLibrary::Pnetcdf,
        blocks_per_proc: BLOCKS_PER_PROC,
        attributes: false,
    };
    let sim = SimConfig::asci_frost();
    let pfs = Pfs::new(sim.clone(), StorageMode::CostOnly);
    let mode = WriteMode::CollectiveHints {
        info: vec![
            ("cb_buffer_size".into(), (1024 * 1024).to_string()),
            ("pnc_trace_events".into(), "enable".into()),
        ],
    };
    let res = run_flash_io_mode(config, sim.clone(), &pfs, mode);
    let snap = sim.events.snapshot();
    assert!(
        !snap.spans.is_empty(),
        "the hint must switch the recorder on"
    );

    // Balanced: every recorded span is complete and never ends before it
    // begins.
    for s in &snap.spans {
        assert!(
            s.begin <= s.end,
            "span {} on rank {} is unbalanced ({}..{})",
            s.name,
            s.rank,
            s.begin,
            s.end
        );
    }

    // Coverage: each rank's spans tile ≥95% of its wall clock.
    for r in 0..NPROCS {
        let cov = snap.rank_coverage(r, res.time.as_nanos());
        assert!(
            cov >= 0.95,
            "rank {r} trace spans cover {:.1}% of its wall clock (< 95%)",
            cov * 100.0
        );
    }

    // Chrome export: complete (X) events with non-negative durations plus
    // metadata (M) and flow (s/f) events, nothing else.
    let chrome = snap.to_chrome();
    let events = match chrome.get("traceEvents") {
        Some(Json::Arr(evs)) => evs,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    let mut complete = 0usize;
    for e in events {
        let ph = match e.get("ph") {
            Some(Json::Str(s)) => s.clone(),
            other => panic!("event without a ph field: {other:?}"),
        };
        match ph.as_str() {
            "X" => {
                let dur = e.get("dur").and_then(Json::as_f64).expect("X event dur");
                assert!(dur >= 0.0, "negative duration in Chrome export");
                complete += 1;
            }
            "M" | "s" | "f" => {}
            other => panic!("unexpected event phase {other}"),
        }
    }
    assert!(complete > 0, "export carries no complete spans");
    write_trace("trace_smoke.trace.json", &chrome);

    // Critical path: every window attributed, all stage keys reported.
    let cp = critical_path(&snap);
    print!("{}", cp.render());
    assert!(
        !cp.windows.is_empty(),
        "the collective write must produce traced windows"
    );
    for key in stage::ALL {
        assert!(
            cp.totals.iter().any(|(s, _)| *s == key),
            "critical-path report missing stage key {key}"
        );
    }
    assert!(cp.dominant.is_some(), "analyzer must name a dominant stage");
    write_report("trace_smoke.critical_path.json", &cp.to_json());
    println!(
        "trace smoke OK: {} spans, {} complete events, {} windows, dominant stage {}",
        snap.spans.len(),
        complete,
        cp.windows.len(),
        cp.dominant.unwrap_or("none"),
    );
}
