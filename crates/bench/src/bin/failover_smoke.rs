//! Failover smoke: the FLASH checkpoint surviving a mid-job server crash.
//!
//! The robustness counterpart to `fault_smoke`'s scenario 3: there, a
//! permanent crash with no redundancy ends the job with one agreed
//! `Exhausted` error on every rank. Here the declustered-parity layer is on
//! (`pnc_parity=enable`), so the same crash escalates to an agreed
//! `ServerLost`, every rank marks the server down at the same operation,
//! and the collective retries in degraded mode:
//!
//! 1. **Baseline** — parity on, fault-free; byte-identical to a parity-off
//!    run (the overlay never touches data placement) and no failover
//!    counters move.
//! 2. **Crash mid-write** — one server dies halfway through the clean
//!    makespan and stays down for 30 virtual seconds. The checkpoint
//!    *completes*: writes bound for the dead server are redirected and
//!    covered by parity on the survivors.
//! 3. **Degraded read-back** — while the server is still down, the whole
//!    file reads back byte-identical, every dead-server chunk XOR-
//!    reconstructed from surviving data + parity.
//! 4. **Online rebuild** — the first access past the restart replays the
//!    degraded-write log onto the returning server and refreshes its
//!    parity rows; the file is byte-identical to the fault-free run.
//!
//! Usage: `cargo run --release -p pnetcdf-bench --bin failover_smoke`

use flash_io::{writers, BlockMesh, OutputKind};
use hpc_sim::trace::Json;
use hpc_sim::{CrashSpec, FaultPlan, SimConfig, Time};
use pnetcdf::Info;
use pnetcdf_bench::report::write_report;
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

const NPROCS: usize = 64;
const NXB: u64 = 8;
const BLOCKS_PER_PROC: u64 = 4;

fn mesh() -> BlockMesh {
    BlockMesh {
        nxb: NXB,
        blocks_per_proc: BLOCKS_PER_PROC,
        nprocs: NPROCS,
    }
}

/// Run the checkpoint with the given info hints; returns (pfs, makespan).
fn checkpoint(sim: &SimConfig, info: Info) -> (Pfs, Time) {
    let pfs = Pfs::new(sim.clone(), StorageMode::Full);
    let pfs2 = pfs.clone();
    let m = mesh();
    let run = run_world(NPROCS, sim.clone(), move |comm| {
        writers::pnetcdf::write_collective(
            comm,
            &pfs2,
            &m,
            OutputKind::Checkpoint,
            "flash_out",
            &info,
        )
        .expect("checkpoint write failed")
    });
    (pfs, run.makespan)
}

fn file_bytes(pfs: &Pfs) -> Vec<u8> {
    pfs.open("flash_out")
        .expect("checkpoint written")
        .to_bytes()
}

fn main() {
    println!("# Failover smoke: FLASH checkpoint, {NPROCS} procs, parity + server crash");

    // 1. Fault-free baseline, parity on — and a parity-off twin to prove
    //    the overlay leaves the data bytes alone.
    let base_sim = SimConfig::asci_frost();
    base_sim.profile.set_enabled(true);
    let (base_pfs, base_makespan) = checkpoint(&base_sim, Info::new().with("pnc_parity", "enable"));
    let clean_bytes = file_bytes(&base_pfs);
    let plain_sim = SimConfig::asci_frost();
    plain_sim.profile.set_enabled(true);
    let (plain_pfs, _) = checkpoint(&plain_sim, Info::new());
    assert_eq!(
        clean_bytes,
        file_bytes(&plain_pfs),
        "FAIL: parity overlay changed the file bytes"
    );
    let fo = base_sim.profile.failover_counters();
    assert!(
        fo.parity_updates > 0,
        "FAIL: parity never maintained: {fo:?}"
    );
    assert_eq!(fo.epochs, 0, "FAIL: fault-free run declared an epoch");
    assert_eq!(fo.degraded_reads, 0, "FAIL: fault-free degraded reads");
    let pfo = plain_sim.profile.failover_counters();
    assert_eq!(pfo.parity_updates, 0, "FAIL: parity-off run paid parity");
    println!(
        "  baseline:  {} file bytes in {:.3}s virtual, parity-off twin byte-identical",
        clean_bytes.len(),
        base_makespan.as_secs_f64()
    );

    // 2. Crash one server mid-write; restart 30 virtual seconds later —
    //    far past the retry ladder, so the ranks must escalate to failover
    //    rather than backoff through the outage.
    let crash_at = Time::from_nanos(base_makespan.as_nanos() / 2);
    let restart = crash_at + Time::from_secs_f64(30.0);
    let plan = FaultPlan {
        crashes: vec![CrashSpec {
            server: 0,
            at: crash_at,
            restart: Some(restart),
        }],
        ..FaultPlan::default()
    };
    let crash_sim = SimConfig::asci_frost().builder().faults(plan).build();
    crash_sim.profile.set_enabled(true);
    let (pfs, makespan) = checkpoint(&crash_sim, Info::new().with("pnc_parity", "enable"));
    assert!(
        makespan < restart,
        "FAIL: degraded-mode write ({makespan:?}) dragged past the restart ({restart:?})"
    );
    assert_eq!(
        pfs.down_server(),
        Some(0),
        "FAIL: server 0 never failed over"
    );
    let fo = crash_sim.profile.failover_counters();
    let fc = crash_sim.profile.fault_counters();
    assert_eq!(fo.epochs, 1, "FAIL: expected one server-down epoch: {fo:?}");
    assert!(
        fo.redirected_writes > 0,
        "FAIL: no writes redirected: {fo:?}"
    );
    assert!(fo.redirected_bytes > 0, "FAIL: no bytes redirected: {fo:?}");
    assert!(fc.exhausted > 0, "FAIL: ladder never exhausted: {fc:?}");
    assert!(
        fc.agreed_errors > 0,
        "FAIL: no collective agreement: {fc:?}"
    );
    println!(
        "  crash:     checkpoint completed degraded in {:.3}s virtual ({} writes redirected)",
        makespan.as_secs_f64(),
        fo.redirected_writes
    );

    // 3. Degraded read-back while the server is still down: every chunk of
    //    the dead server reconstructs from surviving data + parity.
    let f = pfs.open("flash_out").expect("checkpoint written");
    let t_read = makespan + Time::from_millis(1);
    assert!(t_read < restart, "read must land inside the outage");
    let mut degraded = vec![0u8; f.size() as usize];
    f.try_read_at(t_read, 0, &mut degraded)
        .expect("degraded read must succeed without server 0");
    assert_eq!(
        degraded, clean_bytes,
        "FAIL: degraded read diverged from the fault-free file"
    );
    let fo = crash_sim.profile.failover_counters();
    assert!(fo.degraded_reads > 0, "FAIL: no degraded reads: {fo:?}");
    assert!(
        fo.reconstructed_bytes > 0,
        "FAIL: nothing reconstructed: {fo:?}"
    );
    println!(
        "  degraded:  read-back byte-identical ({} bytes reconstructed from parity)",
        fo.reconstructed_bytes
    );

    // 4. First access past the restart triggers the online rebuild; the
    //    server rejoins and the file is byte-identical.
    let mut probe = [0u8; 1];
    f.try_read_at(restart + Time::from_secs_f64(1.0), 0, &mut probe)
        .expect("post-restart read failed");
    assert_eq!(
        pfs.down_server(),
        None,
        "FAIL: rebuild never cleared the mark"
    );
    let fo = crash_sim.profile.failover_counters();
    assert_eq!(fo.rebuilds, 1, "FAIL: expected one rebuild: {fo:?}");
    assert!(fo.rebuilt_bytes > 0, "FAIL: rebuild moved no bytes: {fo:?}");
    assert_eq!(
        file_bytes(&pfs),
        clean_bytes,
        "FAIL: rebuilt file diverged from the fault-free run"
    );
    println!(
        "  rebuild:   {} bytes replayed in {:.3}s virtual; file byte-identical",
        fo.rebuilt_bytes,
        Time::from_nanos(fo.rebuild_nanos).as_secs_f64()
    );

    let profile = crash_sim.profile.snapshot().to_json(makespan.as_nanos());
    write_report(
        "failover_smoke.profile.json",
        &Json::obj()
            .with("benchmark", "failover_smoke")
            .with("nprocs", NPROCS as u64)
            .with("blocks_per_proc", BLOCKS_PER_PROC)
            .with("byte_identical", true)
            .with("degraded_reads", fo.degraded_reads)
            .with("reconstructed_bytes", fo.reconstructed_bytes)
            .with("redirected_writes", fo.redirected_writes)
            .with("rebuilds", fo.rebuilds)
            .with("rebuilt_bytes", fo.rebuilt_bytes)
            .with("profile", profile),
    );
    println!("failover smoke OK");
}
