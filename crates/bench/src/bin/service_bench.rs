//! Service-cluster benchmark: 64 concurrent client sessions on one shared
//! 8-server PFS cluster.
//!
//! Models the machine-room scenario the paper's testbeds served: many
//! independent applications — FLASH-style checkpoint writers and strided
//! analytics readers — each opening *different* netCDF datasets against the
//! *same* I/O servers. The run reports aggregate and per-session
//! throughput, per-server cross-file contention (queue/NIC/disk stalls
//! attributable to *other* files' traffic) and metadata-shard activity,
//! and proves the whole schedule deterministic: a second run on a fresh
//! cluster with the same seed must reproduce every session's byte count
//! and final sim clock exactly.
//!
//! Usage: `cargo run --release -p pnetcdf-bench --bin service_bench`

use hpc_sim::trace::Json;
use hpc_sim::SimConfig;
use pnetcdf_bench::report::write_report;
use pnetcdf_bench::service::{mixed_specs, prepare_shared_datasets, run_sessions, ServiceRun};
use pnetcdf_bench::table::fmt_bytes;
use pnetcdf_pfs::{PfsCluster, StorageMode};

const NSESSIONS: usize = 64;
const NSHARED: usize = 8;
const STEPS: usize = 6;
const VALUES_PER_STEP: usize = 8192; // 64 KiB records
const NSERVERS: usize = 8;

fn platform() -> SimConfig {
    let mut cfg = SimConfig::sdsc_blue_horizon();
    cfg.io_servers = NSERVERS;
    cfg
}

fn one_run(cfg: &SimConfig) -> (ServiceRun, PfsCluster) {
    let cluster = PfsCluster::new(cfg.clone(), StorageMode::Full);
    let (specs, shared) = mixed_specs(NSESSIONS, NSHARED, STEPS, VALUES_PER_STEP);
    prepare_shared_datasets(&cluster, &shared, STEPS, VALUES_PER_STEP);
    // Quiescent point: bill the sessions from a cold, time-zero cluster
    // and keep setup traffic out of the profile.
    cluster.reset_timing();
    cfg.profile.reset();
    let run = run_sessions(&cluster, &specs);
    (run, cluster)
}

fn main() {
    println!(
        "# Service cluster: {NSESSIONS} sessions ({} writers / {} readers), \
         {NSERVERS} servers, {NSHARED} shared datasets",
        NSESSIONS / 2,
        NSESSIONS / 2
    );

    let cfg = platform();
    cfg.profile.set_enabled(true);
    let (run, cluster) = one_run(&cfg);

    let ndatasets = cluster.meta().len();
    assert!(
        ndatasets >= 16,
        "FAIL: expected >= 16 datasets on the cluster, found {ndatasets}"
    );

    let profile = cfg.profile.snapshot();
    let cross_total: u64 = profile
        .servers
        .iter()
        .map(|s| s.cross_file_stall_nanos)
        .sum();
    assert!(
        cross_total > 0,
        "FAIL: 64 sessions over shared servers produced no cross-file contention"
    );

    // Determinism: fresh cluster, same seed, identical everything.
    let cfg2 = platform();
    let (run2, _) = one_run(&cfg2);
    assert_eq!(
        run.aggregate_bytes, run2.aggregate_bytes,
        "FAIL: aggregate bytes differ across identical runs"
    );
    for (a, b) in run.sessions.iter().zip(&run2.sessions) {
        assert_eq!(
            (a.id, a.bytes, a.end),
            (b.id, b.bytes, b.end),
            "FAIL: session {} not deterministic",
            a.id
        );
    }

    println!(
        "  aggregate: {} over {} -> {:.1} MB/s (best single session {:.1} MB/s)",
        fmt_bytes(run.aggregate_bytes),
        run.makespan,
        run.aggregate_mb_s(),
        run.max_session_mb_s()
    );
    println!(
        "  cross-file stall: {:.3} s summed over {NSERVERS} servers; deterministic across reruns",
        cross_total as f64 / 1e9
    );

    let sessions: Vec<Json> = run
        .sessions
        .iter()
        .map(|s| {
            Json::obj()
                .with("session", s.id as u64)
                .with("kind", format!("{:?}", s.kind))
                .with("dataset", s.dataset.clone())
                .with("bytes", s.bytes)
                .with("sim_s", s.end.as_nanos() as f64 / 1e9)
                .with("mb_s", s.mb_s())
        })
        .collect();
    let shards: Vec<Json> = cluster
        .meta()
        .stats()
        .iter()
        .enumerate()
        .map(|(i, st)| {
            Json::obj()
                .with("shard", i as u64)
                .with("creates", st.creates)
                .with("opens", st.opens)
                .with("files", st.files)
        })
        .collect();

    write_report(
        "service_bench.profile.json",
        &Json::obj()
            .with("benchmark", "service_bench")
            .with("sessions", NSESSIONS as u64)
            .with("servers", NSERVERS as u64)
            .with("datasets", ndatasets as u64)
            .with("aggregate_bytes", run.aggregate_bytes)
            .with("aggregate_mb_s", run.aggregate_mb_s())
            .with("max_session_mb_s", run.max_session_mb_s())
            .with("cross_file_stall_total_nanos", cross_total)
            .with("deterministic", true)
            .with("per_session", Json::Arr(sessions))
            .with("meta_shards", Json::Arr(shards))
            .with("profile", profile.to_json(run.makespan.as_nanos())),
    );
    println!("service bench OK");
}
