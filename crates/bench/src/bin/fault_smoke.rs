//! Robustness smoke: the FLASH checkpoint under injected storage faults.
//!
//! Three runs of the Figure 7 checkpoint workload on the Frost-like
//! platform, 64 processors:
//!
//! 1. **Baseline** — fault-free, file bytes exported.
//! 2. **Recovered faults** — `transient=0.05,short=0.05` on every server
//!    op. The retry/backoff layer must hide all of it: the produced file is
//!    byte-identical to the baseline, `faults_injected` and `retries` are
//!    nonzero, and the phase breakdown still explains the whole makespan
//!    (backoff time is charged inside the disk phases).
//! 3. **Permanent crash** — one server dies mid-write and never restarts.
//!    Every rank must return the *same* error (collective error agreement)
//!    in bounded virtual time — no hang, no divergent returns.
//!
//! Usage: `cargo run --release -p pnetcdf-bench --bin fault_smoke`

use flash_io::{run_flash_io_on, writers, BlockMesh, FlashConfig, IoLibrary, OutputKind};
use hpc_sim::trace::Json;
use hpc_sim::{FaultPlan, SimConfig, Time};
use pnetcdf_bench::report::{check_coverage, write_report};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

const NPROCS: usize = 64;
const NXB: u64 = 8;
const BLOCKS_PER_PROC: u64 = 4;

fn config() -> FlashConfig {
    FlashConfig {
        nxb: NXB,
        nprocs: NPROCS,
        kind: OutputKind::Checkpoint,
        lib: IoLibrary::Pnetcdf,
        blocks_per_proc: BLOCKS_PER_PROC,
        attributes: false,
    }
}

/// Run the checkpoint on a full-storage PFS and return (file bytes, result).
fn checkpoint_bytes(sim: SimConfig) -> (Vec<u8>, flash_io::FlashResult) {
    let pfs = Pfs::new(sim.clone(), StorageMode::Full);
    let res = run_flash_io_on(config(), sim, &pfs);
    let bytes = pfs
        .open("flash_out")
        .expect("checkpoint written")
        .to_bytes();
    (bytes, res)
}

fn main() {
    println!("# Fault-injection smoke: FLASH checkpoint, {NPROCS} procs, Frost platform");

    // 1. Fault-free baseline.
    let base_sim = SimConfig::asci_frost();
    base_sim.profile.set_enabled(true);
    let (clean_bytes, clean) = checkpoint_bytes(base_sim.clone());
    println!(
        "  baseline:  {:.1} MB/s, {} file bytes",
        clean.bandwidth_mb_s,
        clean_bytes.len()
    );

    // 2. Transient + short faults; recovery must be byte-exact.
    let plan = FaultPlan::from_spec("transient=0.05,short=0.05").expect("valid spec");
    let faulty_sim = SimConfig::asci_frost().builder().faults(plan).build();
    faulty_sim.profile.set_enabled(true);
    let (faulty_bytes, faulty) = checkpoint_bytes(faulty_sim.clone());
    assert_eq!(
        clean_bytes, faulty_bytes,
        "FAIL: recovered faults changed the file contents"
    );
    let fc = faulty_sim.profile.fault_counters();
    assert!(fc.faults_injected > 0, "FAIL: no faults injected: {fc:?}");
    assert!(fc.retries > 0, "FAIL: recovery never retried: {fc:?}");
    assert_eq!(fc.exhausted, 0, "FAIL: a retry budget exhausted: {fc:?}");
    let profile = faulty_sim
        .profile
        .snapshot()
        .to_json(faulty.time.as_nanos());
    check_coverage(&profile, 0.05);
    println!(
        "  faulty:    {:.1} MB/s, byte-identical; {} faults hidden by {} retries",
        faulty.bandwidth_mb_s, fc.faults_injected, fc.retries
    );

    // 3. Crash-without-restart mid-write, NO parity (the redundancy-free
    //    baseline the failover_smoke contrasts with): identical agreed
    //    error on every rank, bounded virtual time, and the failover
    //    machinery never engages.
    let crash_at = Time::from_nanos(clean.time.as_nanos() / 2);
    let spec = format!("crash=server:0@t>{}", crash_at.as_nanos());
    let plan = FaultPlan::from_spec(&spec).expect("valid crash spec");
    assert_eq!(
        FaultPlan::from_spec(&plan.to_string()).expect("display reparses"),
        plan,
        "FAIL: crash spec does not round-trip through Display"
    );
    let crash_sim = SimConfig::asci_frost().builder().faults(plan).build();
    crash_sim.profile.set_enabled(true);
    let pfs = Pfs::new(crash_sim.clone(), StorageMode::Full);
    let pfs2 = pfs.clone();
    let mesh = BlockMesh {
        nxb: NXB,
        blocks_per_proc: BLOCKS_PER_PROC,
        nprocs: NPROCS,
    };
    let run = run_world(
        NPROCS,
        crash_sim.clone(),
        move |comm| match writers::pnetcdf::write_with(
            comm,
            &pfs2,
            &mesh,
            OutputKind::Checkpoint,
            "flash_out",
            false,
        ) {
            Ok(_) => panic!("FAIL: write succeeded with a permanently dead server"),
            Err(e) => format!("{e:?}"),
        },
    );
    for (rank, err) in run.results.iter().enumerate() {
        assert_eq!(
            err, &run.results[0],
            "FAIL: rank {rank} returned a different error than rank 0"
        );
    }
    assert!(
        run.results[0].contains("Exhausted"),
        "FAIL: expected retry exhaustion, got {}",
        run.results[0]
    );
    let bound = crash_at + Time::from_secs_f64(60.0);
    assert!(
        run.makespan < bound,
        "FAIL: ranks gave up only at {:?} (bound {:?})",
        run.makespan,
        bound
    );
    let cc = crash_sim.profile.fault_counters();
    assert!(cc.exhausted > 0 && cc.agreed_errors > 0, "FAIL: {cc:?}");
    assert_eq!(
        crash_sim.profile.failover_counters(),
        Default::default(),
        "FAIL: failover engaged without parity"
    );
    println!(
        "  crash:     identical error on all {NPROCS} ranks after {:?} virtual",
        run.makespan
    );

    // 4. Two crash windows, each with a restart short enough for the
    //    retry ladder to wait out (no parity needed): the multi-window
    //    plan recovers to a byte-identical file.
    // The aggregated flush issues server requests at a handful of round
    // instants, so each window spans a broad slice of the flush period —
    // 90 ms, still inside the ~100 ms the backoff ladder can wait out.
    let w1 = Time::from_nanos(clean.time.as_nanos() * 35 / 100);
    let w2 = Time::from_nanos(clean.time.as_nanos() * 70 / 100);
    let outage = Time::from_millis(90);
    let spec = format!(
        "crash=server:0@t>{},restart={},crash=server:1@t>{},restart={}",
        w1.as_nanos(),
        (w1 + outage).as_nanos(),
        w2.as_nanos(),
        (w2 + outage).as_nanos(),
    );
    let plan = FaultPlan::from_spec(&spec).expect("valid multi-window spec");
    assert_eq!(
        FaultPlan::from_spec(&plan.to_string()).expect("display reparses"),
        plan,
        "FAIL: multi-window spec does not round-trip through Display"
    );
    let windows_sim = SimConfig::asci_frost().builder().faults(plan).build();
    windows_sim.profile.set_enabled(true);
    let (windowed_bytes, windowed) = checkpoint_bytes(windows_sim.clone());
    assert_eq!(
        clean_bytes, windowed_bytes,
        "FAIL: crash windows with restarts changed the file contents"
    );
    let wc = windows_sim.profile.fault_counters();
    assert!(wc.crashed > 0, "FAIL: no window was ever hit: {wc:?}");
    assert!(wc.retries > 0, "FAIL: recovery never retried: {wc:?}");
    assert_eq!(wc.exhausted, 0, "FAIL: a short outage exhausted: {wc:?}");
    println!(
        "  windows:   {:.1} MB/s through two {:?} outages, byte-identical",
        windowed.bandwidth_mb_s, outage
    );

    write_report(
        "fault_smoke.profile.json",
        &Json::obj()
            .with("benchmark", "fault_smoke")
            .with("nprocs", NPROCS as u64)
            .with("blocks_per_proc", BLOCKS_PER_PROC)
            .with("baseline_mb_s", clean.bandwidth_mb_s)
            .with("faulty_mb_s", faulty.bandwidth_mb_s)
            .with("byte_identical", true)
            .with("crash_error", run.results[0].clone())
            .with("profile", profile),
    );
    println!("fault smoke OK");
}
