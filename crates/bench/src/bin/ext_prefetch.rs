//! Extension: the `nc_prefetch_vars` hint (paper §4.1).
//!
//! The paper's motivating scenario: "applications that pull a small amount
//! of data from a large number of separate netCDF files, this type of
//! optimization could be a big win." Here P ranks sweep over many files,
//! reading a small set of variables from each repeatedly (e.g. a
//! climatology post-processor scanning monthly files); with the hint, each
//! variable is fetched once at open and all further reads are local.
//!
//! Usage: `cargo run --release -p pnetcdf-bench --bin ext_prefetch`

use hpc_sim::{SimConfig, Time};
use pnetcdf::{Dataset, Info, NcType, Version};
use pnetcdf_bench::table::print_series;
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

const NFILES: usize = 24; // e.g. two years of monthly files
const NREADS: usize = 20; // passes over each variable per file

fn make_files(pfs: &Pfs, nprocs: usize) {
    let pfs = pfs.clone();
    run_world(nprocs, SimConfig::sdsc_blue_horizon(), move |c| {
        for fi in 0..NFILES {
            let mut ds = Dataset::create(
                c,
                &pfs,
                &format!("month_{fi:02}.nc"),
                Version::Cdf1,
                &Info::new(),
            )
            .unwrap();
            let x = ds.def_dim("station", 512).unwrap();
            let t2m = ds.def_var("t2m_mean", NcType::Float, &[x]).unwrap();
            let precip = ds.def_var("precip_total", NcType::Float, &[x]).unwrap();
            // Plus a large variable the post-processor does not touch.
            let y = ds.def_dim("gridpoints", 1 << 18).unwrap();
            let full = ds.def_var("full_field", NcType::Float, &[y]).unwrap();
            ds.enddef().unwrap();
            let slab = 512 / nprocs as u64;
            let s = c.rank() as u64 * slab;
            let vals = vec![1.0f32; slab as usize];
            ds.put_vara_all(t2m, &[s], &[slab], &vals).unwrap();
            ds.put_vara_all(precip, &[s], &[slab], &vals).unwrap();
            let gslab = (1 << 18) / nprocs as u64;
            ds.put_vara_all(
                full,
                &[c.rank() as u64 * gslab],
                &[gslab],
                &vec![0.0f32; gslab as usize],
            )
            .unwrap();
            ds.close().unwrap();
        }
    });
}

fn sweep(pfs: &Pfs, nprocs: usize, hint: bool) -> Time {
    let pfs = pfs.clone();
    pfs.reset_timing();
    let run = run_world(nprocs, SimConfig::sdsc_blue_horizon(), move |c| {
        let info = if hint {
            Info::new().with("nc_prefetch_vars", "t2m_mean,precip_total")
        } else {
            Info::new()
        };
        let t0 = c.now();
        for fi in 0..NFILES {
            let mut ds = Dataset::open(c, &pfs, &format!("month_{fi:02}.nc"), true, &info).unwrap();
            let t2m = ds.inq_varid("t2m_mean").unwrap();
            let precip = ds.inq_varid("precip_total").unwrap();
            for _ in 0..NREADS {
                let _: Vec<f32> = ds.get_vara_all(t2m, &[0], &[512]).unwrap();
                let _: Vec<f32> = ds.get_vara_all(precip, &[0], &[512]).unwrap();
            }
            ds.close().unwrap();
        }
        c.now() - t0
    });
    run.results.into_iter().max().unwrap()
}

fn main() {
    println!("# Extension: nc_prefetch_vars hint");
    println!("# {NFILES} files, 2 small variables each, {NREADS} read passes per file");
    let procs = [1usize, 2, 4, 8];
    let xs: Vec<String> = procs.iter().map(|p| p.to_string()).collect();
    let mut with_hint = Vec::new();
    let mut without = Vec::new();
    for &p in &procs {
        let pfs = Pfs::new(SimConfig::sdsc_blue_horizon(), StorageMode::Full);
        make_files(&pfs, p);
        without.push(sweep(&pfs, p, false).as_secs_f64() * 1e3);
        with_hint.push(sweep(&pfs, p, true).as_secs_f64() * 1e3);
    }
    print_series(
        "Sweep time over all files",
        "config",
        &xs,
        &[
            ("no hint".to_string(), without.clone()),
            ("prefetch".to_string(), with_hint.clone()),
        ],
        "ms",
    );
    let speedup: Vec<f64> = without.iter().zip(&with_hint).map(|(a, b)| a / b).collect();
    println!("\nspeedup with hint: {speedup:.1?}");
}
