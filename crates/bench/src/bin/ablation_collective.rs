//! Ablation: collective vs independent data mode.
//!
//! The paper: "Using collective operations provides the underlying PnetCDF
//! implementation an opportunity to further optimize access ... proven to
//! provide dramatic performance improvement in multidimensional dataset
//! access." Here the same Y-partitioned (noncontiguous) write is issued
//! through `put_vara_all` (two-phase collective I/O) and through
//! independent `put_vara` (data sieving per rank), at several scales.
//!
//! Usage: `cargo run --release -p pnetcdf-bench --bin ablation_collective`

use hpc_sim::{SimConfig, Time};
use pnetcdf::{Dataset, Info, NcType, Version};
use pnetcdf_bench::partition::{block_of, grid_for, Partition};
use pnetcdf_bench::table::print_series;
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

fn run(dims: (u64, u64, u64), nprocs: usize, collective: bool) -> Time {
    let cfg = SimConfig::sdsc_blue_horizon();
    let pfs = Pfs::new(cfg.clone(), StorageMode::CostOnly);
    let grid = grid_for(Partition::Y, nprocs);
    let run = run_world(nprocs, cfg, move |comm| {
        let mut ds = Dataset::create(comm, &pfs, "a.nc", Version::Cdf2, &Info::new()).unwrap();
        let z = ds.def_dim("z", dims.0).unwrap();
        let y = ds.def_dim("y", dims.1).unwrap();
        let x = ds.def_dim("x", dims.2).unwrap();
        let v = ds.def_var("tt", NcType::Float, &[z, y, x]).unwrap();
        ds.enddef().unwrap();
        let (start, count) = block_of(comm.rank(), grid, dims);
        let block = vec![1.0f32; (count[0] * count[1] * count[2]) as usize];
        let t0 = comm.now();
        if collective {
            ds.put_vara_all(v, &start, &count, &block).unwrap();
        } else {
            ds.begin_indep_data().unwrap();
            ds.put_vara(v, &start, &count, &block).unwrap();
            ds.end_indep_data().unwrap();
        }
        let t = comm.now() - t0;
        ds.close().unwrap();
        t
    });
    run.results.into_iter().max().unwrap()
}

fn main() {
    let dims = (128u64, 128, 256); // 16 MB f32, Y-partitioned
    let procs = [2usize, 4, 8, 16];
    let total = (dims.0 * dims.1 * dims.2 * 4) as f64;
    let mb = |t: Time| total / t.as_secs_f64() / 1e6;

    println!("# Ablation: collective (two-phase) vs independent (sieved) writes");
    println!("# 16 MB tt(Z,Y,X) f32, Y partition, SDSC-like platform");

    let xs: Vec<String> = procs.iter().map(|p| p.to_string()).collect();
    let mut series = Vec::new();
    for (name, collective) in [("collective", true), ("independent", false)] {
        let row: Vec<f64> = procs
            .iter()
            .map(|&p| mb(run(dims, p, collective)))
            .collect();
        series.push((name.to_string(), row));
    }
    print_series(
        "Collective vs independent write",
        "mode",
        &xs,
        &series,
        "MB/s",
    );

    let speedup: Vec<f64> = series[0]
        .1
        .iter()
        .zip(&series[1].1)
        .map(|(c, i)| c / i)
        .collect();
    println!("\nspeedup (collective / independent): {speedup:.1?}");
}
