//! Two-phase pipelining smoke: serial vs pipelined collective engines.
//!
//! Three runs of the Figure 7 checkpoint workload (64 processors, 8³
//! blocks, Frost-like platform) with full byte storage:
//!
//! 1. **Default collective** — the stock hint set (reference bytes).
//! 2. **Serial** — `pnc_cb_pipeline=disable` with a 512 KiB collective
//!    buffer, so the engine runs many rounds strictly after one monolithic
//!    exchange. Must be byte-identical to the reference.
//! 3. **Pipelined** — same buffer with pipelining on: round `j+1`'s
//!    exchange overlaps round `j`'s disk access. Must be byte-identical
//!    again, no slower than serial in simulated time, with nonzero
//!    `overlap_saved_ns` and a phase breakdown that still explains the
//!    whole makespan.
//!
//! Usage: `cargo run --release -p pnetcdf-bench --bin twophase_smoke`

use flash_io::{run_flash_io_mode, FlashConfig, IoLibrary, OutputKind, WriteMode};
use hpc_sim::trace::Json;
use hpc_sim::SimConfig;
use pnetcdf_bench::report::{check_coverage, write_report};
use pnetcdf_pfs::{Pfs, StorageMode};

const NPROCS: usize = 64;
const NXB: u64 = 8;
const BLOCKS_PER_PROC: u64 = 8;
/// Small enough that each aggregator's file domain spans many rounds.
const CB_BUFFER: usize = 512 * 1024;

fn checkpoint_bytes(sim: SimConfig, mode: WriteMode) -> (Vec<u8>, flash_io::FlashResult) {
    let config = FlashConfig {
        nxb: NXB,
        nprocs: NPROCS,
        kind: OutputKind::Checkpoint,
        lib: IoLibrary::Pnetcdf,
        blocks_per_proc: BLOCKS_PER_PROC,
        attributes: false,
    };
    let pfs = Pfs::new(sim.clone(), StorageMode::Full);
    let res = run_flash_io_mode(config, sim, &pfs, mode);
    let bytes = pfs
        .open("flash_out")
        .expect("checkpoint written")
        .to_bytes();
    (bytes, res)
}

fn main() {
    println!("# Two-phase pipelining smoke: FLASH checkpoint, {NPROCS} procs, Frost platform");

    let (reference, default) = checkpoint_bytes(SimConfig::asci_frost(), WriteMode::Collective);
    println!(
        "  default:   {:.1} MB/s, {} file bytes",
        default.bandwidth_mb_s,
        reference.len()
    );

    let (serial_bytes, serial) = checkpoint_bytes(
        SimConfig::asci_frost(),
        WriteMode::collective_hints(CB_BUFFER, false),
    );
    assert_eq!(
        serial_bytes, reference,
        "FAIL: the serial engine produced different file contents"
    );
    println!(
        "  serial:    {:.1} MB/s, byte-identical ({} KiB buffer)",
        serial.bandwidth_mb_s,
        CB_BUFFER / 1024
    );

    let sim = SimConfig::asci_frost();
    sim.profile.set_enabled(true);
    let (pipelined_bytes, pipelined) =
        checkpoint_bytes(sim.clone(), WriteMode::collective_hints(CB_BUFFER, true));
    assert_eq!(
        pipelined_bytes, reference,
        "FAIL: the pipelined engine produced different file contents"
    );
    let tp = sim.profile.twophase_counters();
    assert!(
        tp.pipelined_rounds >= 2,
        "FAIL: workload too small to pipeline: {tp:?}"
    );
    assert!(
        tp.overlap_saved_nanos > 0,
        "FAIL: pipelining hid no exchange time: {tp:?}"
    );
    assert!(
        pipelined.time <= serial.time,
        "FAIL: pipelined engine slower than serial ({:?} vs {:?})",
        pipelined.time,
        serial.time
    );
    let profile = sim.profile.snapshot().to_json(pipelined.time.as_nanos());
    check_coverage(&profile, 0.05);
    println!(
        "  pipelined: {:.1} MB/s, byte-identical; {} rounds, {:.3} s overlap hidden",
        pipelined.bandwidth_mb_s,
        tp.pipelined_rounds,
        tp.overlap_saved_nanos as f64 / 1e9
    );

    write_report(
        "twophase_smoke.profile.json",
        &Json::obj()
            .with("benchmark", "twophase_smoke")
            .with("nprocs", NPROCS as u64)
            .with("blocks_per_proc", BLOCKS_PER_PROC)
            .with("cb_buffer_size", CB_BUFFER as u64)
            .with("default_mb_s", default.bandwidth_mb_s)
            .with("serial_mb_s", serial.bandwidth_mb_s)
            .with("pipelined_mb_s", pipelined.bandwidth_mb_s)
            .with("rounds", tp.pipelined_rounds)
            .with("overlap_saved_ns", tp.overlap_saved_nanos)
            .with("byte_identical", true)
            .with("profile", profile),
    );
    println!("twophase smoke OK");
}
