//! Extension experiment (paper §6 future work): FLASH *restart* read
//! performance, PnetCDF vs HDF5.
//!
//! The paper conjectures: "perhaps without the additional synchronization
//! of writes the \[read\] performance is more comparable." This harness
//! writes a checkpoint with each library and times reading it back.
//! Expected shape: the PnetCDF/HDF5 gap narrows on reads (HDF5-sim skips
//! its write-time metadata synchronization) but does not close entirely
//! (per-object collective opens and recursive hyperslab unpacking remain).
//!
//! Usage: `cargo run --release -p pnetcdf-bench --bin ext_flash_read [-- --quick]`

use flash_io::readers::run_restart;
use flash_io::{BlockMesh, IoLibrary};
use hpc_sim::SimConfig;
use pnetcdf_bench::table::print_series;
use pnetcdf_pfs::StorageMode;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (blocks_per_proc, procs): (u64, Vec<usize>) = if quick {
        (8, vec![4, 8, 16])
    } else {
        (80, vec![16, 32, 64, 128, 256])
    };

    println!("# Extension: FLASH restart (checkpoint read-back), Frost-like platform");
    println!("# blocks/proc = {blocks_per_proc}, 8x8x8 blocks, 24 unknowns f64");

    let xs: Vec<String> = procs.iter().map(|p| p.to_string()).collect();
    let mut series = Vec::new();
    let mut ratios = Vec::new();
    for lib in [IoLibrary::Pnetcdf, IoLibrary::Hdf5] {
        let mut row = Vec::new();
        for &p in &procs {
            let mesh = BlockMesh {
                nxb: 8,
                blocks_per_proc,
                nprocs: p,
            };
            let (bytes, t) = run_restart(
                lib,
                mesh,
                SimConfig::asci_frost(),
                StorageMode::MetadataOnly,
            );
            row.push(bytes as f64 / t.as_secs_f64() / 1e6);
            eprintln!("  done: {} read, {p} procs", lib.label());
        }
        series.push((lib.label().to_string(), row));
    }
    for (p, h) in series[0].1.iter().zip(&series[1].1) {
        ratios.push(p / h);
    }
    print_series(
        "FLASH restart read bandwidth",
        "library",
        &xs,
        &series,
        "MB/s",
    );
    println!("\nPnetCDF/HDF5 read ratio: {ratios:.2?}");
    println!("(compare with the write ratios from fig7_flashio)");
}
