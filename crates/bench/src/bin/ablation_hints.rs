//! Ablation: MPI-IO hint tuning (`cb_buffer_size`, `cb_nodes`).
//!
//! The paper: hints "tune the MPI-IO implementation to the specific
//! platform ... such as enabling or disabling certain algorithms or
//! adjusting internal buffer sizes and policies," and experienced users
//! "have the opportunity to tune their applications for further
//! performance gains." This sweep shows both knobs working through the
//! PnetCDF → MPI-IO hint path.
//!
//! Usage: `cargo run --release -p pnetcdf-bench --bin ablation_hints`

use hpc_sim::{SimConfig, Time};
use pnetcdf::{Dataset, Info, NcType, Version};
use pnetcdf_bench::partition::{block_of, grid_for, Partition};
use pnetcdf_bench::table::print_series;
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

fn run(nprocs: usize, info: Info) -> Time {
    let cfg = SimConfig::sdsc_blue_horizon();
    let pfs = Pfs::new(cfg.clone(), StorageMode::CostOnly);
    let dims = (64u64, 256, 256); // 16 MB
    let grid = grid_for(Partition::YX, nprocs);
    let run = run_world(nprocs, cfg, move |comm| {
        let mut ds = Dataset::create(comm, &pfs, "h.nc", Version::Cdf2, &info).unwrap();
        let z = ds.def_dim("z", dims.0).unwrap();
        let y = ds.def_dim("y", dims.1).unwrap();
        let x = ds.def_dim("x", dims.2).unwrap();
        let v = ds.def_var("tt", NcType::Float, &[z, y, x]).unwrap();
        ds.enddef().unwrap();
        let (start, count) = block_of(comm.rank(), grid, dims);
        let block = vec![1.0f32; (count[0] * count[1] * count[2]) as usize];
        let t0 = comm.now();
        ds.put_vara_all(v, &start, &count, &block).unwrap();
        let t = comm.now() - t0;
        ds.close().unwrap();
        t
    });
    run.results.into_iter().max().unwrap()
}

fn main() {
    let nprocs = 8;
    let total = (64u64 * 256 * 256 * 4) as f64;
    let mb = |t: Time| total / t.as_secs_f64() / 1e6;

    println!("# Ablation: ROMIO hint sweeps (16 MB YX-partitioned write, 8 procs)");

    // cb_buffer_size sweep.
    let sizes = ["262144", "1048576", "4194304", "16777216"];
    let xs: Vec<String> = sizes
        .iter()
        .map(|s| format!("{}K", s.parse::<usize>().unwrap() / 1024))
        .collect();
    let row: Vec<f64> = sizes
        .iter()
        .map(|s| mb(run(nprocs, Info::new().with("cb_buffer_size", s))))
        .collect();
    print_series(
        "cb_buffer_size sweep",
        "hint",
        &xs,
        &[("write bw".to_string(), row)],
        "MB/s",
    );

    // cb_nodes sweep.
    let nodes = ["1", "2", "4", "8", "12"];
    let xs: Vec<String> = nodes.iter().map(|s| s.to_string()).collect();
    let row: Vec<f64> = nodes
        .iter()
        .map(|s| mb(run(nprocs, Info::new().with("cb_nodes", s))))
        .collect();
    print_series(
        "cb_nodes sweep",
        "hint",
        &xs,
        &[("write bw".to_string(), row)],
        "MB/s",
    );

    // Two-phase off entirely.
    let on = mb(run(nprocs, Info::new()));
    let off = mb(run(
        nprocs,
        Info::new()
            .with("romio_cb_write", "disable")
            .with("romio_ds_write", "disable"),
    ));
    println!(
        "\ntwo-phase enabled: {on:.1} MB/s; disabled (per-rank strided writes): {off:.1} MB/s"
    );
}
