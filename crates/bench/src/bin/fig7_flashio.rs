//! Figure 7: the FLASH I/O benchmark on the ASCI White Frost-like platform,
//! PnetCDF vs HDF5.
//!
//! Six charts: {checkpoint, plotfile, plotfile-with-corners} × {8³, 16³}
//! blocks, aggregate write bandwidth over the number of processors. The
//! paper's result: "PnetCDF has much less overhead and outperforms parallel
//! HDF5 in every case, more than doubling the overall I/O rate in many
//! cases."
//!
//! Every run executes with `pnetcdf-trace` profiling enabled; the per-phase
//! breakdowns (exchange vs disk vs metadata, per rank and aggregated) are
//! written to `fig7_flashio.profile.json` next to the text tables, and each
//! run asserts that the attributed phase times explain the makespan to
//! within 5%.
//!
//! Usage: `cargo run --release -p pnetcdf-bench --bin fig7_flashio [-- --quick|--full]`
//!   --quick  fewer blocks/proc and processors (smoke test)
//!   --full   extends to 512 processors on the 8³ corner chart, as plotted

use flash_io::{run_flash_io, run_flash_io_mode, FlashConfig, IoLibrary, OutputKind, WriteMode};
use hpc_sim::trace::Json;
use hpc_sim::SimConfig;
use pnetcdf_bench::report::{check_coverage, write_report, write_trace};
use pnetcdf_bench::table::print_series;
use pnetcdf_pfs::{Pfs, StorageMode};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let full = std::env::args().any(|a| a == "--full");

    let (blocks_per_proc, procs): (u64, Vec<usize>) = if quick {
        (8, vec![4, 8, 16])
    } else if full {
        (80, vec![16, 32, 64, 128, 256, 512])
    } else {
        (80, vec![16, 32, 64, 128, 256])
    };

    println!("# Figure 7: FLASH I/O benchmark (ASCI White Frost-like platform)");
    println!("# 2 GPFS I/O servers; aggregate bandwidth in MB/s (virtual time)");
    println!("# blocks/proc = {blocks_per_proc}");

    let mut runs = Vec::new();
    let xs: Vec<String> = procs.iter().map(|p| p.to_string()).collect();
    for nxb in [8u64, 16] {
        for kind in [
            OutputKind::Checkpoint,
            OutputKind::Plotfile,
            OutputKind::PlotfileCorners,
        ] {
            let mut series = Vec::new();
            for lib in [IoLibrary::Pnetcdf, IoLibrary::Hdf5] {
                let mut row = Vec::new();
                for &p in &procs {
                    let config = FlashConfig {
                        nxb,
                        nprocs: p,
                        kind,
                        lib,
                        blocks_per_proc,
                        attributes: false, // as in the paper's port
                    };
                    let sim = SimConfig::asci_frost();
                    sim.profile.set_enabled(true);
                    let res = run_flash_io(config, sim.clone(), StorageMode::CostOnly);
                    let profile = sim.profile.snapshot().to_json(res.time.as_nanos());
                    // Hard guarantee of the trace layer: every simulated
                    // nanosecond of the critical rank is attributed to a
                    // phase, so the breakdown explains the makespan.
                    check_coverage(&profile, 0.05);
                    runs.push(
                        Json::obj()
                            .with("kind", kind.label())
                            .with("nxb", nxb)
                            .with("library", lib.label())
                            .with("nprocs", p)
                            .with("blocks_per_proc", blocks_per_proc)
                            .with("bytes", res.bytes)
                            .with("bandwidth_mb_s", res.bandwidth_mb_s)
                            .with("profile", profile),
                    );
                    row.push(res.bandwidth_mb_s);
                    eprintln!(
                        "  done: {} {}x{}x{} {} procs: {:.1} MB/s ({} written)",
                        lib.label(),
                        nxb,
                        nxb,
                        nxb,
                        p,
                        res.bandwidth_mb_s,
                        pnetcdf_bench::table::fmt_bytes(res.bytes),
                    );
                }
                series.push((lib.label().to_string(), row));
            }
            print_series(
                &format!("FLASH I/O {} ({nxb}x{nxb}x{nxb})", kind.label()),
                "library",
                &xs,
                &series,
                "MB/s",
            );
        }
    }
    // Client-cache trajectory: the checkpoint written the way FLASH emits
    // it natively (independent per-block puts), with and without the page
    // cache, against the collective port. Machine-readable results land in
    // BENCH_fig7.json in the working directory.
    println!();
    println!("# Client page cache: checkpoint 8x8x8, independent per-block puts");
    let mut bench_rows = Vec::new();
    let mut cached_series = (Vec::new(), Vec::new(), Vec::new());
    for &p in &procs {
        let config = FlashConfig {
            nxb: 8,
            nprocs: p,
            kind: OutputKind::Checkpoint,
            lib: IoLibrary::Pnetcdf,
            blocks_per_proc,
            attributes: false,
        };
        let coll = run_flash_io(config, SimConfig::asci_frost(), StorageMode::CostOnly);

        let sim_u = SimConfig::asci_frost();
        let pfs_u = Pfs::new(sim_u.clone(), StorageMode::CostOnly);
        let uncached = run_flash_io_mode(config, sim_u, &pfs_u, WriteMode::uncached());

        let sim_c = SimConfig::asci_frost();
        sim_c.profile.set_enabled(true);
        let pfs_c = Pfs::new(sim_c.clone(), StorageMode::CostOnly);
        let cached = run_flash_io_mode(config, sim_c.clone(), &pfs_c, WriteMode::cached(8 << 20));
        let cc = sim_c.profile.cache_counters();
        assert!(cc.hits > 0, "cached run must hit its cache: {cc:?}");
        assert!(
            cc.write_behind_bytes > 0,
            "cached run must flush via write-behind: {cc:?}"
        );
        assert!(
            cached.bandwidth_mb_s > uncached.bandwidth_mb_s,
            "page cache must beat uncached per-block writes at {p} procs \
             ({:.1} vs {:.1} MB/s)",
            cached.bandwidth_mb_s,
            uncached.bandwidth_mb_s
        );
        let profile = sim_c.profile.snapshot().to_json(cached.time.as_nanos());
        check_coverage(&profile, 0.05);
        eprintln!(
            "  done: cache trajectory {p} procs: collective {:.1}, uncached {:.1}, cached {:.1} MB/s",
            coll.bandwidth_mb_s, uncached.bandwidth_mb_s, cached.bandwidth_mb_s
        );
        bench_rows.push(
            Json::obj()
                .with("ranks", p)
                .with("collective_mb_s", coll.bandwidth_mb_s)
                .with("indep_uncached_mb_s", uncached.bandwidth_mb_s)
                .with("indep_cached_mb_s", cached.bandwidth_mb_s)
                .with(
                    "cache_speedup",
                    cached.bandwidth_mb_s / uncached.bandwidth_mb_s,
                )
                .with("cache_hits", cc.hits)
                .with("cache_write_behind_bytes", cc.write_behind_bytes)
                .with("cache_evictions", cc.evictions),
        );
        cached_series.0.push(coll.bandwidth_mb_s);
        cached_series.1.push(uncached.bandwidth_mb_s);
        cached_series.2.push(cached.bandwidth_mb_s);
    }
    print_series(
        "FLASH I/O checkpoint (8x8x8), per-block independent puts",
        "mode",
        &xs,
        &[
            ("collective".to_string(), cached_series.0),
            ("indep uncached".to_string(), cached_series.1),
            ("indep cached".to_string(), cached_series.2),
        ],
        "MB/s",
    );
    let bench = Json::obj()
        .with("benchmark", "fig7_flashio_cache")
        .with("kind", "checkpoint")
        .with("nxb", 8u64)
        .with("blocks_per_proc", blocks_per_proc)
        .with("rows", Json::Arr(bench_rows));
    std::fs::write("BENCH_fig7.json", bench.pretty()).expect("writing BENCH_fig7.json");
    eprintln!("  bench results: BENCH_fig7.json");

    write_report(
        "fig7_flashio.profile.json",
        &Json::obj()
            .with("benchmark", "fig7_flashio")
            .with("blocks_per_proc", blocks_per_proc)
            .with("runs", Json::Arr(runs)),
    );

    // Request tracing: re-run one representative configuration with the
    // event tracer on (what `pnc_trace_events=enable` switches on at open),
    // export the span timeline as Chrome trace JSON, and print which stage
    // bounds each collective window.
    let tp = procs
        .iter()
        .copied()
        .find(|&p| p >= 64)
        .unwrap_or(*procs.last().expect("procs nonempty"));
    println!();
    println!("# Request tracing: checkpoint 8x8x8, {tp} procs, pnc_trace_events=enable");
    let config = FlashConfig {
        nxb: 8,
        nprocs: tp,
        kind: OutputKind::Checkpoint,
        lib: IoLibrary::Pnetcdf,
        blocks_per_proc,
        attributes: false,
    };
    let sim = SimConfig::asci_frost();
    sim.events.set_enabled(true);
    let res = run_flash_io(config, sim.clone(), StorageMode::CostOnly);
    let snap = sim.events.snapshot();
    for r in 0..tp {
        let cov = snap.rank_coverage(r, res.time.as_nanos());
        assert!(
            cov >= 0.95,
            "rank {r} trace spans cover {:.1}% of its wall clock (< 95%)",
            cov * 100.0
        );
    }
    write_trace("fig7_flashio.trace.json", &snap.to_chrome());
    let cp = hpc_sim::trace::events::critical_path(&snap);
    print!("{}", cp.render());
    write_report("fig7_flashio.critical_path.json", &cp.to_json());
}
