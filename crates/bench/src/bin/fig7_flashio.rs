//! Figure 7: the FLASH I/O benchmark on the ASCI White Frost-like platform,
//! PnetCDF vs HDF5.
//!
//! Six charts: {checkpoint, plotfile, plotfile-with-corners} × {8³, 16³}
//! blocks, aggregate write bandwidth over the number of processors. The
//! paper's result: "PnetCDF has much less overhead and outperforms parallel
//! HDF5 in every case, more than doubling the overall I/O rate in many
//! cases."
//!
//! Usage: `cargo run --release -p pnetcdf-bench --bin fig7_flashio [-- --quick|--full]`
//!   --quick  fewer blocks/proc and processors (smoke test)
//!   --full   extends to 512 processors on the 8³ corner chart, as plotted

use flash_io::{run_flash_io, FlashConfig, IoLibrary, OutputKind};
use hpc_sim::SimConfig;
use pnetcdf_bench::table::print_series;
use pnetcdf_pfs::StorageMode;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let full = std::env::args().any(|a| a == "--full");

    let (blocks_per_proc, procs): (u64, Vec<usize>) = if quick {
        (8, vec![4, 8, 16])
    } else if full {
        (80, vec![16, 32, 64, 128, 256, 512])
    } else {
        (80, vec![16, 32, 64, 128, 256])
    };

    println!("# Figure 7: FLASH I/O benchmark (ASCI White Frost-like platform)");
    println!("# 2 GPFS I/O servers; aggregate bandwidth in MB/s (virtual time)");
    println!("# blocks/proc = {blocks_per_proc}");

    let xs: Vec<String> = procs.iter().map(|p| p.to_string()).collect();
    for nxb in [8u64, 16] {
        for kind in [
            OutputKind::Checkpoint,
            OutputKind::Plotfile,
            OutputKind::PlotfileCorners,
        ] {
            let mut series = Vec::new();
            for lib in [IoLibrary::Pnetcdf, IoLibrary::Hdf5] {
                let mut row = Vec::new();
                for &p in &procs {
                    let config = FlashConfig {
                        nxb,
                        nprocs: p,
                        kind,
                        lib,
                        blocks_per_proc,
                        attributes: false, // as in the paper's port
                    };
                    let res = run_flash_io(config, SimConfig::asci_frost(), StorageMode::CostOnly);
                    row.push(res.bandwidth_mb_s);
                    eprintln!(
                        "  done: {} {}x{}x{} {} procs: {:.1} MB/s ({} written)",
                        lib.label(),
                        nxb,
                        nxb,
                        nxb,
                        p,
                        res.bandwidth_mb_s,
                        pnetcdf_bench::table::fmt_bytes(res.bytes),
                    );
                }
                series.push((lib.label().to_string(), row));
            }
            print_series(
                &format!("FLASH I/O {} ({nxb}x{nxb}x{nxb})", kind.label()),
                "library",
                &xs,
                &series,
                "MB/s",
            );
        }
    }
}
