//! Ablation: where HDF5's FLASH deficit comes from.
//!
//! Fixed total data volume, variable number of datasets. PnetCDF defines
//! all variables in one header and pays one `enddef`; HDF5-sim pays a
//! collective create + metadata-sync + collective close per dataset. As the
//! dataset count rises the HDF5 curve falls away — the paper's explanation
//! of Figure 7 ("the extra overhead involved in parallel HDF5 includes
//! interprocess synchronizations and file header access performed
//! internally in parallel open/close of every dataset").
//!
//! Usage: `cargo run --release -p pnetcdf-bench --bin ablation_hdf5_overheads`

use hdf5_sim::{H5File, H5Type};
use hpc_sim::{SimConfig, Time};
use pnetcdf::{Dataset, Info, NcType, Version};
use pnetcdf_bench::table::print_series;
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

const TOTAL_ELEMS: u64 = 1 << 21; // 16 MiB of f64 in total

fn run_pnetcdf(nprocs: usize, ndatasets: usize) -> Time {
    let cfg = SimConfig::asci_frost();
    let pfs = Pfs::new(cfg.clone(), StorageMode::CostOnly);
    let run = run_world(nprocs, cfg, move |comm| {
        let per = TOTAL_ELEMS / ndatasets as u64;
        let slab = per / nprocs as u64;
        let t0 = comm.now();
        let mut ds = Dataset::create(comm, &pfs, "p.nc", Version::Cdf2, &Info::new()).unwrap();
        let d = ds.def_dim("n", per).unwrap();
        let ids: Vec<usize> = (0..ndatasets)
            .map(|i| ds.def_var(&format!("v{i}"), NcType::Double, &[d]).unwrap())
            .collect();
        ds.enddef().unwrap();
        let vals = vec![1.0f64; slab as usize];
        for &v in &ids {
            ds.put_vara_all(v, &[comm.rank() as u64 * slab], &[slab], &vals)
                .unwrap();
        }
        ds.close().unwrap();
        comm.now() - t0
    });
    run.results.into_iter().max().unwrap()
}

fn run_hdf5(nprocs: usize, ndatasets: usize) -> Time {
    let cfg = SimConfig::asci_frost();
    let pfs = Pfs::new(cfg.clone(), StorageMode::CostOnly);
    let run = run_world(nprocs, cfg, move |comm| {
        let per = TOTAL_ELEMS / ndatasets as u64;
        let slab = per / nprocs as u64;
        let t0 = comm.now();
        let mut f = H5File::create(comm, &pfs, "h.h5", &pnetcdf_mpi::Info::new()).unwrap();
        let vals = vec![1.0f64; slab as usize];
        for i in 0..ndatasets {
            let mut d = f
                .create_dataset(&format!("v{i}"), H5Type::F64, &[per])
                .unwrap();
            d.write_all(&mut f, &[comm.rank() as u64 * slab], &[slab], &vals)
                .unwrap();
            d.close(&mut f).unwrap();
        }
        f.close().unwrap();
        comm.now() - t0
    });
    run.results.into_iter().max().unwrap()
}

fn main() {
    let nprocs = 16;
    let counts = [1usize, 2, 4, 8, 16, 32, 64];
    let total = (TOTAL_ELEMS * 8) as f64;
    let mb = |t: Time| total / t.as_secs_f64() / 1e6;

    println!("# Ablation: per-dataset overhead decomposition (16 MiB total, 16 procs)");

    let xs: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
    let p: Vec<f64> = counts.iter().map(|&c| mb(run_pnetcdf(nprocs, c))).collect();
    let h: Vec<f64> = counts.iter().map(|&c| mb(run_hdf5(nprocs, c))).collect();
    print_series(
        "Bandwidth vs number of datasets (fixed volume)",
        "library",
        &xs,
        &[
            ("PnetCDF".to_string(), p.clone()),
            ("HDF5".to_string(), h.clone()),
        ],
        "MB/s",
    );
    let ratio: Vec<f64> = p.iter().zip(&h).map(|(a, b)| a / b).collect();
    println!("\nPnetCDF/HDF5 ratio by dataset count: {ratio:.2?}");
    println!("(FLASH writes 29 datasets per checkpoint — read the ratio there.)");
}
