//! Ablation: the three approaches to using netCDF in parallel programs
//! (paper Figure 2).
//!
//! (a) serialize through one process: all ranks ship their blocks to rank
//!     0, which performs serial netCDF I/O;
//! (b) one file per process: every rank writes its own netCDF file
//!     concurrently with the serial API;
//! (c) PnetCDF: all ranks write one shared file collectively.
//!
//! The paper's argument: (a) bottlenecks and its cost *grows* with P, (b)
//! is fast but shatters the dataset, (c) keeps one file at (near-)parallel
//! speed.
//!
//! Usage: `cargo run --release -p pnetcdf-bench --bin ablation_access_strategy`

use hpc_sim::{SimConfig, Time};
use netcdf_serial::NcFile;
use pnetcdf::{Dataset, Info, NcType, Version};
use pnetcdf_bench::table::print_series;
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, PosixSim, StorageMode};

const TAG_DATA: i32 = 77;

fn dims_for(nprocs: usize) -> (u64, u64, u64) {
    (nprocs as u64 * 8, 128, 128) // 8 z-planes of 128x128 f32 per rank
}

/// (a) Ship everything to rank 0; rank 0 writes with the serial library.
fn strategy_a(nprocs: usize) -> Time {
    let cfg = SimConfig::sdsc_blue_horizon();
    let pfs = Pfs::new(cfg.clone(), StorageMode::CostOnly);
    let dims = dims_for(nprocs);
    let run = run_world(nprocs, cfg, move |comm| {
        let planes = dims.0 / nprocs as u64;
        let n = (planes * dims.1 * dims.2) as usize;
        let mine = vec![1.0f32; n];
        let t0 = comm.now();
        if comm.rank() == 0 {
            let posix = PosixSim::new(pfs.create("a.nc"));
            let watch = posix.clone();
            watch.clone().set_now(comm.now());
            let mut f = NcFile::create(posix, Version::Cdf2);
            let z = f.def_dim("z", dims.0).unwrap();
            let y = f.def_dim("y", dims.1).unwrap();
            let x = f.def_dim("x", dims.2).unwrap();
            let v = f.def_var("tt", NcType::Float, &[z, y, x]).unwrap();
            f.enddef().unwrap();
            // Rank 0's own block, then everyone else's as they arrive.
            f.put_vara(v, &[0, 0, 0], &[planes, dims.1, dims.2], &mine)
                .unwrap();
            for _ in 1..comm.size() {
                let (data, st) = comm
                    .recv_scalars::<f32>(pnetcdf_mpi::ANY_SOURCE, TAG_DATA)
                    .unwrap();
                // The serial write happens after the data arrives.
                let arrive = comm.now();
                if watch.now() < arrive {
                    watch.clone().set_now(arrive);
                }
                f.put_vara(
                    v,
                    &[st.source as u64 * planes, 0, 0],
                    &[planes, dims.1, dims.2],
                    &data,
                )
                .unwrap();
            }
            drop(f);
            comm.advance_to(watch.now());
        } else {
            comm.send_scalars(0, TAG_DATA, &mine).unwrap();
        }
        comm.barrier().unwrap();
        comm.now() - t0
    });
    run.results.into_iter().max().unwrap()
}

/// (b) One file per process with the serial library.
fn strategy_b(nprocs: usize) -> Time {
    let cfg = SimConfig::sdsc_blue_horizon();
    let pfs = Pfs::new(cfg.clone(), StorageMode::CostOnly);
    let dims = dims_for(nprocs);
    let run = run_world(nprocs, cfg, move |comm| {
        let planes = dims.0 / nprocs as u64;
        let n = (planes * dims.1 * dims.2) as usize;
        let mine = vec![1.0f32; n];
        let t0 = comm.now();
        let posix = PosixSim::new(pfs.create(&format!("b_{}.nc", comm.rank())));
        let watch = posix.clone();
        watch.clone().set_now(t0);
        let mut f = NcFile::create(posix, Version::Cdf2);
        let z = f.def_dim("z", planes).unwrap();
        let y = f.def_dim("y", dims.1).unwrap();
        let x = f.def_dim("x", dims.2).unwrap();
        let v = f.def_var("tt", NcType::Float, &[z, y, x]).unwrap();
        f.enddef().unwrap();
        f.put_vara(v, &[0, 0, 0], &[planes, dims.1, dims.2], &mine)
            .unwrap();
        drop(f);
        comm.advance_to(watch.now());
        comm.barrier().unwrap();
        comm.now() - t0
    });
    run.results.into_iter().max().unwrap()
}

/// (c) PnetCDF collective access to a single shared file.
fn strategy_c(nprocs: usize) -> Time {
    let cfg = SimConfig::sdsc_blue_horizon();
    let pfs = Pfs::new(cfg.clone(), StorageMode::CostOnly);
    let dims = dims_for(nprocs);
    let run = run_world(nprocs, cfg, move |comm| {
        let planes = dims.0 / nprocs as u64;
        let n = (planes * dims.1 * dims.2) as usize;
        let mine = vec![1.0f32; n];
        let t0 = comm.now();
        let mut ds = Dataset::create(comm, &pfs, "c.nc", Version::Cdf2, &Info::new()).unwrap();
        let z = ds.def_dim("z", dims.0).unwrap();
        let y = ds.def_dim("y", dims.1).unwrap();
        let x = ds.def_dim("x", dims.2).unwrap();
        let v = ds.def_var("tt", NcType::Float, &[z, y, x]).unwrap();
        ds.enddef().unwrap();
        ds.put_vara_all(
            v,
            &[comm.rank() as u64 * planes, 0, 0],
            &[planes, dims.1, dims.2],
            &mine,
        )
        .unwrap();
        ds.close().unwrap();
        comm.now() - t0
    });
    run.results.into_iter().max().unwrap()
}

fn main() {
    let procs = [2usize, 4, 8, 16];
    println!("# Ablation: the three access strategies of Figure 2");
    println!("# per-rank block: 8 z-planes of 128x128 f32 (4 MB); total grows with P");

    let xs: Vec<String> = procs.iter().map(|p| p.to_string()).collect();
    let mut series = Vec::new();
    for (name, f) in [
        ("(a) via rank 0", strategy_a as fn(usize) -> Time),
        ("(b) file/proc", strategy_b),
        ("(c) PnetCDF", strategy_c),
    ] {
        let row: Vec<f64> = procs
            .iter()
            .map(|&p| {
                let dims = dims_for(p);
                let total = (dims.0 * dims.1 * dims.2 * 4) as f64;
                total / f(p).as_secs_f64() / 1e6
            })
            .collect();
        series.push((name.to_string(), row));
    }
    print_series(
        "Access strategy bandwidth",
        "strategy",
        &xs,
        &series,
        "MB/s",
    );
    println!("\nnote: (b) writes P separate files — fast but the dataset is shattered;");
    println!("      (c) matches or approaches (b) while keeping one self-describing file.");
}
