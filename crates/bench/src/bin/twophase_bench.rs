//! Two-phase pipelining sweep: serial vs pipelined collective engines over
//! collective-buffer sizes and scales.
//!
//! The FLASH checkpoint workload (8³ blocks, Frost-like platform) at 16
//! and 64 processors, with `cb_buffer_size` ∈ {256 KiB, 1 MiB, 4 MiB} and
//! the round engine toggled via `pnc_cb_pipeline`. Smaller buffers mean
//! more rounds and therefore more exchange time the pipeline can hide
//! behind disk. Machine-readable results land in `BENCH_twophase.json`.
//!
//! Usage: `cargo run --release -p pnetcdf-bench --bin twophase_bench`

use flash_io::{run_flash_io_mode, FlashConfig, IoLibrary, OutputKind, WriteMode};
use hpc_sim::trace::Json;
use hpc_sim::SimConfig;
use pnetcdf_bench::report::{check_coverage, write_report, write_trace};
use pnetcdf_bench::table::print_series;
use pnetcdf_pfs::{Pfs, StorageMode};

const BLOCKS_PER_PROC: u64 = 8;

fn main() {
    println!("# Two-phase pipelining sweep: FLASH checkpoint 8x8x8, Frost platform");
    println!("# blocks/proc = {BLOCKS_PER_PROC}; aggregate bandwidth in MB/s (virtual time)");

    let buffers: [usize; 3] = [256 * 1024, 1024 * 1024, 4 * 1024 * 1024];
    let xs: Vec<String> = buffers.iter().map(|b| format!("{}KiB", b / 1024)).collect();
    let mut rows = Vec::new();
    for nprocs in [16usize, 64] {
        let config = FlashConfig {
            nxb: 8,
            nprocs,
            kind: OutputKind::Checkpoint,
            lib: IoLibrary::Pnetcdf,
            blocks_per_proc: BLOCKS_PER_PROC,
            attributes: false,
        };
        let mut serial_row = Vec::new();
        let mut pipelined_row = Vec::new();
        for &cb in &buffers {
            let mut mb_s = [0.0f64; 2];
            let mut saved_ns = 0u64;
            let mut rounds = 0u64;
            for (i, pipeline) in [false, true].into_iter().enumerate() {
                let sim = SimConfig::asci_frost();
                sim.profile.set_enabled(true);
                let pfs = Pfs::new(sim.clone(), StorageMode::CostOnly);
                let res = run_flash_io_mode(
                    config,
                    sim.clone(),
                    &pfs,
                    WriteMode::collective_hints(cb, pipeline),
                );
                let profile = sim.profile.snapshot().to_json(res.time.as_nanos());
                check_coverage(&profile, 0.05);
                mb_s[i] = res.bandwidth_mb_s;
                if pipeline {
                    let tp = sim.profile.twophase_counters();
                    saved_ns = tp.overlap_saved_nanos;
                    rounds = tp.pipelined_rounds;
                }
            }
            // Pipelining is not free (per-round collective latency, offset
            // exchange); allow it to trail serial by <1% where rounds are
            // few, but never more.
            assert!(
                mb_s[1] >= mb_s[0] * 0.99,
                "pipelined lost >1% to serial at {nprocs} procs, cb={cb} \
                 ({:.1} vs {:.1} MB/s)",
                mb_s[1],
                mb_s[0]
            );
            // At scale the dual-resource servers + server-affine domains
            // must genuinely win: one aggregator stream per server keeps
            // each NIC+disk pipeline full, so hand-off-acknowledged rounds
            // beat wait-for-durability rounds by well over 20%.
            if nprocs == 64 {
                assert!(
                    mb_s[1] > mb_s[0] * 1.2,
                    "pipelined must beat serial by >1.2x at {nprocs} procs, cb={cb} \
                     ({:.1} vs {:.1} MB/s)",
                    mb_s[1],
                    mb_s[0]
                );
            }
            eprintln!(
                "  done: {nprocs} procs cb={}KiB: serial {:.1}, pipelined {:.1} MB/s \
                 ({} rounds, {:.3} s hidden)",
                cb / 1024,
                mb_s[0],
                mb_s[1],
                rounds,
                saved_ns as f64 / 1e9
            );
            rows.push(
                Json::obj()
                    .with("ranks", nprocs)
                    .with("cb_buffer_size", cb as u64)
                    .with("serial_mb_s", mb_s[0])
                    .with("pipelined_mb_s", mb_s[1])
                    .with("speedup", mb_s[1] / mb_s[0])
                    .with("rounds", rounds)
                    .with("overlap_saved_ns", saved_ns),
            );
            serial_row.push(mb_s[0]);
            pipelined_row.push(mb_s[1]);
        }
        print_series(
            &format!("FLASH I/O checkpoint (8x8x8), {nprocs} procs"),
            "engine",
            &xs,
            &[
                ("serial".to_string(), serial_row),
                ("pipelined".to_string(), pipelined_row),
            ],
            "MB/s",
        );
    }
    let bench = Json::obj()
        .with("benchmark", "twophase_pipeline")
        .with("kind", "checkpoint")
        .with("nxb", 8u64)
        .with("blocks_per_proc", BLOCKS_PER_PROC)
        .with("rows", Json::Arr(rows));
    std::fs::write("BENCH_twophase.json", bench.pretty()).expect("writing BENCH_twophase.json");
    eprintln!("  bench results: BENCH_twophase.json");

    // Request tracing: the 64-proc pipelined run at the largest collective
    // buffer, with per-request event spans on. At a large cb_buffer the
    // rounds are few and fat, so the critical-path analyzer must attribute
    // the windows to the disk stage.
    let cb = buffers[buffers.len() - 1];
    println!();
    println!(
        "# Request tracing: 64 procs, cb={}KiB, pipelined",
        cb / 1024
    );
    let config = FlashConfig {
        nxb: 8,
        nprocs: 64,
        kind: OutputKind::Checkpoint,
        lib: IoLibrary::Pnetcdf,
        blocks_per_proc: BLOCKS_PER_PROC,
        attributes: false,
    };
    let sim = SimConfig::asci_frost();
    sim.events.set_enabled(true);
    let pfs = Pfs::new(sim.clone(), StorageMode::CostOnly);
    let res = run_flash_io_mode(
        config,
        sim.clone(),
        &pfs,
        WriteMode::collective_hints(cb, true),
    );
    let snap = sim.events.snapshot();
    for r in 0..64 {
        let cov = snap.rank_coverage(r, res.time.as_nanos());
        assert!(
            cov >= 0.95,
            "rank {r} trace spans cover {:.1}% of its wall clock (< 95%)",
            cov * 100.0
        );
    }
    write_trace("twophase_bench.trace.json", &snap.to_chrome());
    let cp = hpc_sim::trace::events::critical_path(&snap);
    print!("{}", cp.render());
    assert!(
        !cp.windows.is_empty(),
        "traced run must produce collective windows"
    );
    assert_eq!(
        cp.dominant,
        Some("disk"),
        "large cb_buffer windows must be disk-bound: {:?}",
        cp.bound_counts
    );
    write_report("twophase_bench.critical_path.json", &cp.to_json());
}
