//! Figure 6: serial vs parallel netCDF bandwidth on the SDSC-like platform.
//!
//! Reproduces all four charts — read/write of 64 MB and 1 GB `tt(Z,Y,X)`
//! datasets — over the seven partitions of Figure 5 and 1–16 (64 MB) or
//! 1–32 (1 GB) processes, with the serial-netCDF single-process bandwidth
//! as the first column, exactly as the paper plots it.
//!
//! Usage: `cargo run --release -p pnetcdf-bench --bin fig6_scalability [-- --quick]`

use hpc_sim::trace::Json;
use hpc_sim::{SimConfig, Time};
use netcdf_serial::NcFile;
use pnetcdf::{Dataset, Info, NcType, Version};
use pnetcdf_bench::partition::{block_of, grid_for, PARTITIONS};
use pnetcdf_bench::report::write_report;
use pnetcdf_bench::table::print_series;
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, PosixSim, StorageMode};

/// One (write, read) timing for a parallel configuration, plus the phase
/// profile of the run. All data I/O is collective, as in the paper's tests.
fn run_parallel(
    dims: (u64, u64, u64),
    partition: pnetcdf_bench::Partition,
    nprocs: usize,
) -> (Time, Time, Json) {
    let cfg = SimConfig::sdsc_blue_horizon();
    cfg.profile.set_enabled(true);
    let pfs = Pfs::new(cfg.clone(), StorageMode::CostOnly);
    let grid = grid_for(partition, nprocs);
    let run = run_world(nprocs, cfg.clone(), move |comm| {
        let mut ds = Dataset::create(comm, &pfs, "tt.nc", Version::Cdf2, &Info::new()).unwrap();
        let z = ds.def_dim("level", dims.0).unwrap();
        let y = ds.def_dim("latitude", dims.1).unwrap();
        let x = ds.def_dim("longitude", dims.2).unwrap();
        let tt = ds.def_var("tt", NcType::Float, &[z, y, x]).unwrap();
        ds.enddef().unwrap();

        let (start, count) = block_of(comm.rank(), grid, dims);
        let n = (count[0] * count[1] * count[2]) as usize;
        let block = vec![1.0f32; n];

        let t0 = comm.now();
        ds.put_vara_all(tt, &start, &count, &block).unwrap();
        let t_write = comm.now() - t0;
        drop(block);

        let t1 = comm.now();
        let back: Vec<f32> = ds.get_vara_all(tt, &start, &count).unwrap();
        let t_read = comm.now() - t1;
        drop(back);
        ds.close().unwrap();
        (t_write, t_read)
    });
    let profile = cfg.profile.snapshot().to_json(run.makespan.as_nanos());
    (
        run.results.iter().map(|r| r.0).max().unwrap(),
        run.results.iter().map(|r| r.1).max().unwrap(),
        profile,
    )
}

/// Serial netCDF baseline: one process reads/writes the whole array through
/// the serial library over a single client NIC (Figure 6's first column).
fn run_serial(dims: (u64, u64, u64)) -> (Time, Time) {
    let cfg = SimConfig::sdsc_blue_horizon();
    let pfs = Pfs::new(cfg, StorageMode::CostOnly);
    let posix = PosixSim::new(pfs.create("tt.nc"));
    let watch = posix.clone(); // shared clock
    let mut f = NcFile::create(posix, Version::Cdf2);
    let z = f.def_dim("level", dims.0).unwrap();
    let y = f.def_dim("latitude", dims.1).unwrap();
    let x = f.def_dim("longitude", dims.2).unwrap();
    let tt = f.def_var("tt", NcType::Float, &[z, y, x]).unwrap();
    f.enddef().unwrap();

    let n = (dims.0 * dims.1 * dims.2) as usize;
    let vals = vec![1.0f32; n];
    let t0 = watch.now();
    f.put_vara(tt, &[0, 0, 0], &[dims.0, dims.1, dims.2], &vals)
        .unwrap();
    let t_write = watch.now() - t0;
    drop(vals);

    let t1 = watch.now();
    let back: Vec<f32> = f
        .get_vara(tt, &[0, 0, 0], &[dims.0, dims.1, dims.2])
        .unwrap();
    let t_read = watch.now() - t1;
    drop(back);
    (t_write, t_read)
}

/// Small-strided independent variant for the client-cache comparison: each
/// rank owns a band of z-planes and writes it one y-row (512 B) at a time
/// in independent data mode, then reads it back plane by plane. Returns
/// (write, read) times for the critical rank.
fn run_indep_chunked(dims: (u64, u64, u64), nprocs: usize, cached: bool) -> (Time, Time) {
    let cfg = SimConfig::sdsc_blue_horizon();
    let pfs = Pfs::new(cfg.clone(), StorageMode::CostOnly);
    let info = if cached {
        Info::new().with("pnc_cache", "enable")
    } else {
        Info::new()
    };
    let run = run_world(nprocs, cfg, move |comm| {
        let mut ds = Dataset::create(comm, &pfs, "tt.nc", Version::Cdf2, &info).unwrap();
        let z = ds.def_dim("level", dims.0).unwrap();
        let y = ds.def_dim("latitude", dims.1).unwrap();
        let x = ds.def_dim("longitude", dims.2).unwrap();
        let tt = ds.def_var("tt", NcType::Float, &[z, y, x]).unwrap();
        ds.enddef().unwrap();

        let per = dims.0 / nprocs as u64;
        let z0 = comm.rank() as u64 * per;
        let row = vec![1.0f32; dims.2 as usize];
        ds.begin_indep_data().unwrap();
        let t0 = comm.now();
        for zp in z0..z0 + per {
            for yp in 0..dims.1 {
                ds.put_vara(tt, &[zp, yp, 0], &[1, 1, dims.2], &row)
                    .unwrap();
            }
        }
        ds.end_indep_data().unwrap();
        let t_write = comm.now() - t0;

        ds.begin_indep_data().unwrap();
        let t1 = comm.now();
        for zp in z0..z0 + per {
            let _plane: Vec<f32> = ds.get_vara(tt, &[zp, 0, 0], &[1, dims.1, dims.2]).unwrap();
        }
        ds.end_indep_data().unwrap();
        let t_read = comm.now() - t1;
        ds.close().unwrap();
        (t_write, t_read)
    });
    (
        run.results.iter().map(|r| r.0).max().unwrap(),
        run.results.iter().map(|r| r.1).max().unwrap(),
    )
}

/// Chart spec: label, array dims, process counts.
type Chart = (&'static str, (u64, u64, u64), Vec<usize>);

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    // 64 MB = 256^3 f32; 1 GB = 512x512x1024 f32.
    let charts: Vec<Chart> = if quick {
        vec![
            ("64 MB", (128, 128, 128), vec![1, 2, 4, 8]),
            ("1 GB", (256, 256, 256), vec![1, 2, 4, 8]),
        ]
    } else {
        vec![
            ("64 MB", (256, 256, 256), vec![1, 2, 4, 8, 16]),
            ("1 GB", (512, 512, 1024), vec![1, 2, 4, 8, 16, 32]),
        ]
    };

    println!("# Figure 6: serial vs parallel netCDF (SDSC Blue Horizon-like platform)");
    println!("# 12 I/O servers, 1.5 GB/s peak aggregate; bandwidth in MB/s (virtual time)");

    let mut runs = Vec::new();
    for (label, dims, procs) in charts {
        let total_bytes = (dims.0 * dims.1 * dims.2 * 4) as f64;
        let mb = |t: Time| total_bytes / t.as_secs_f64() / 1e6;

        let (ts_w, ts_r) = run_serial(dims);

        let mut xs: Vec<String> = vec!["serial".into()];
        xs.extend(procs.iter().map(|p| p.to_string()));

        let mut write_series = Vec::new();
        let mut read_series = Vec::new();
        for part in PARTITIONS {
            let mut wrow = vec![mb(ts_w)];
            let mut rrow = vec![mb(ts_r)];
            for &p in &procs {
                let (tw, tr, profile) = run_parallel(dims, part, p);
                runs.push(
                    Json::obj()
                        .with("chart", label)
                        .with("partition", part.label())
                        .with("nprocs", p)
                        .with("write_mb_s", mb(tw))
                        .with("read_mb_s", mb(tr))
                        .with("profile", profile),
                );
                wrow.push(mb(tw));
                rrow.push(mb(tr));
            }
            write_series.push((part.label().to_string(), wrow));
            read_series.push((part.label().to_string(), rrow));
            eprintln!("  done: {label} partition {}", part.label());
        }
        print_series(
            &format!("Write {label}"),
            "partition",
            &xs,
            &write_series,
            "MB/s",
        );
        print_series(
            &format!("Read {label}"),
            "partition",
            &xs,
            &read_series,
            "MB/s",
        );
    }
    // Client page cache on the small-strided independent pattern the
    // collective charts above deliberately avoid: y-row writes, plane
    // reads, cached vs uncached. Machine-readable results land in
    // BENCH_fig6.json in the working directory.
    println!();
    println!("# Client page cache: independent y-row writes / plane reads");
    let cache_dims = (64u64, 128, 128);
    let cache_procs: Vec<usize> = if quick { vec![2, 4] } else { vec![2, 4, 8, 16] };
    let cache_bytes = (cache_dims.0 * cache_dims.1 * cache_dims.2 * 4) as f64;
    let cmb = |t: Time| cache_bytes / t.as_secs_f64() / 1e6;
    let mut bench_rows = Vec::new();
    let mut wseries = (Vec::new(), Vec::new());
    for &p in &cache_procs {
        let (uw, ur) = run_indep_chunked(cache_dims, p, false);
        let (cw, cr) = run_indep_chunked(cache_dims, p, true);
        eprintln!(
            "  done: cache compare {p} procs: write {:.1} -> {:.1} MB/s, read {:.1} -> {:.1} MB/s",
            cmb(uw),
            cmb(cw),
            cmb(ur),
            cmb(cr)
        );
        bench_rows.push(
            Json::obj()
                .with("ranks", p)
                .with("uncached_write_mb_s", cmb(uw))
                .with("cached_write_mb_s", cmb(cw))
                .with("uncached_read_mb_s", cmb(ur))
                .with("cached_read_mb_s", cmb(cr))
                .with("write_speedup", cmb(cw) / cmb(uw)),
        );
        wseries.0.push(cmb(uw));
        wseries.1.push(cmb(cw));
    }
    let cxs: Vec<String> = cache_procs.iter().map(|p| p.to_string()).collect();
    print_series(
        "Independent y-row write (4 MB)",
        "mode",
        &cxs,
        &[
            ("uncached".to_string(), wseries.0),
            ("cached".to_string(), wseries.1),
        ],
        "MB/s",
    );
    let bench = Json::obj()
        .with("benchmark", "fig6_scalability_cache")
        .with(
            "dims",
            format!("{}x{}x{}", cache_dims.0, cache_dims.1, cache_dims.2),
        )
        .with("rows", Json::Arr(bench_rows));
    std::fs::write("BENCH_fig6.json", bench.pretty()).expect("writing BENCH_fig6.json");
    eprintln!("  bench results: BENCH_fig6.json");

    write_report(
        "fig6_scalability.profile.json",
        &Json::obj()
            .with("benchmark", "fig6_scalability")
            .with("runs", Json::Arr(runs)),
    );
}
