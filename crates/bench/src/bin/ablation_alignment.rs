//! Ablation: file-system block alignment of independent writes.
//!
//! GPFS-style file systems read-modify-write partial blocks. Collective
//! two-phase I/O sidesteps the issue by aligning its file domains and
//! windows to absolute stripe boundaries (see `pnetcdf_mpio::twophase`);
//! *independent* writes enjoy no such help — every request whose edges are
//! not stripe-aligned pays the penalty. This harness writes the same volume
//! as per-rank independent records of an aligned size (256 KiB) versus a
//! misaligned size (256 KiB + 1 KiB), the classic "pad your record size to
//! the block size" lesson.
//!
//! Usage: `cargo run --release -p pnetcdf-bench --bin ablation_alignment`

use hpc_sim::{SimConfig, Time};
use pnetcdf_bench::table::print_series;
use pnetcdf_mpi::{run_world, Datatype, Info};
use pnetcdf_mpio::{MpiFile, OpenMode};
use pnetcdf_pfs::{Pfs, StorageMode};

const RECORDS_PER_RANK: usize = 16;

/// Write `RECORDS_PER_RANK` records of `rec` bytes per rank, interleaved by
/// rank, independently. Returns the makespan of the writes.
fn run(nprocs: usize, rec: usize) -> Time {
    let cfg = SimConfig::sdsc_blue_horizon();
    let pfs = Pfs::new(cfg.clone(), StorageMode::CostOnly);
    let run = run_world(nprocs, cfg, move |comm| {
        let f = MpiFile::open(comm, &pfs, "rec.dat", OpenMode::Create, &Info::new()).unwrap();
        let data = vec![0u8; rec];
        let mem = Datatype::contiguous(rec, Datatype::byte());
        let t0 = comm.now();
        for i in 0..RECORDS_PER_RANK {
            // Record j of rank r lives at slot (j * nprocs + r).
            let slot = (i * comm.size() + comm.rank()) as u64;
            f.write_at(slot * rec as u64, &data, 1, &mem).unwrap();
        }
        comm.barrier().unwrap();
        comm.now() - t0
    });
    run.results.into_iter().max().unwrap()
}

fn main() {
    println!("# Ablation: stripe alignment of independent record writes");
    println!(
        "# {RECORDS_PER_RANK} records/rank, rank-interleaved, SDSC-like platform (256 KiB stripes)"
    );
    let procs = [2usize, 4, 8];
    let aligned_rec = 256 * 1024;
    let misaligned_rec = 256 * 1024 + 1024;

    let xs: Vec<String> = procs.iter().map(|p| p.to_string()).collect();
    let mut rows = Vec::new();
    for (name, rec) in [
        ("256 KiB (aligned)", aligned_rec),
        ("257 KiB (misaligned)", misaligned_rec),
    ] {
        let row: Vec<f64> = procs
            .iter()
            .map(|&p| {
                let total = (p * RECORDS_PER_RANK * rec) as f64;
                total / run(p, rec).as_secs_f64() / 1e6
            })
            .collect();
        rows.push((name.to_string(), row));
    }
    print_series(
        "Independent write bandwidth",
        "record size",
        &xs,
        &rows,
        "MB/s",
    );
    let loss: Vec<f64> = rows[0]
        .1
        .iter()
        .zip(&rows[1].1)
        .map(|(a, m)| (1.0 - m / a) * 100.0)
        .collect();
    println!("\nmisalignment loss: {loss:.1?} %");
    println!("(each misaligned record write read-modify-writes two stripes;");
    println!(" collective I/O avoids this by aligning its file domains)");
}
