//! Service-cluster smoke: a small fleet for CI.
//!
//! 16 concurrent sessions (8 checkpoint writers, 8 strided readers over 4
//! shared datasets) on a shared 4-server cluster. Gates:
//!
//! - nonzero cross-file contention on the shared servers;
//! - aggregate throughput at least the best single session's (the cluster
//!   serves the fleet faster than any one contended client runs);
//! - a deliberately misspelled `pnc_*` hint shows up in `hints_rejected`;
//! - byte counts and per-session sim clocks identical across a rerun.
//!
//! Usage: `cargo run --release -p pnetcdf-bench --bin service_smoke`

use hpc_sim::trace::Json;
use hpc_sim::SimConfig;
use pnetcdf::{Dataset, Info};
use pnetcdf_bench::report::write_report;
use pnetcdf_bench::service::{mixed_specs, prepare_shared_datasets, run_sessions, ServiceRun};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{PfsCluster, StorageMode};

const NSESSIONS: usize = 16;
const NSHARED: usize = 4;
const STEPS: usize = 4;
const VALUES_PER_STEP: usize = 4096; // 32 KiB records
const NSERVERS: usize = 4;

fn platform() -> SimConfig {
    let mut cfg = SimConfig::sdsc_blue_horizon();
    cfg.io_servers = NSERVERS;
    cfg
}

fn one_run(cfg: &SimConfig) -> (ServiceRun, PfsCluster) {
    let cluster = PfsCluster::new(cfg.clone(), StorageMode::Full);
    let (specs, shared) = mixed_specs(NSESSIONS, NSHARED, STEPS, VALUES_PER_STEP);
    prepare_shared_datasets(&cluster, &shared, STEPS, VALUES_PER_STEP);
    cluster.reset_timing();
    cfg.profile.reset();
    let run = run_sessions(&cluster, &specs);
    (run, cluster)
}

fn main() {
    println!(
        "# Service smoke: {NSESSIONS} sessions, {NSERVERS} servers, {NSHARED} shared datasets"
    );

    let cfg = platform();
    cfg.profile.set_enabled(true);
    let (run, cluster) = one_run(&cfg);

    // A malformed hint must be rejected loudly (counter + stderr line)
    // without changing behavior.
    {
        let pfs = cluster.mount();
        run_world(1, cfg.clone(), move |comm| {
            let info = Info::new().with("pnc_cache_sise", "65536"); // sic
            let ds = Dataset::open(comm, &pfs, "shared_0.nc", true, &info).expect("audited open");
            ds.close().expect("close");
        });
    }
    let rejected = cfg.profile.hints_rejected();
    assert!(
        rejected > 0,
        "FAIL: misspelled pnc_ hint was not counted as rejected"
    );

    let profile = cfg.profile.snapshot();
    let cross_total: u64 = profile
        .servers
        .iter()
        .map(|s| s.cross_file_stall_nanos)
        .sum();
    assert!(
        cross_total > 0,
        "FAIL: no cross-file contention recorded on the shared servers"
    );

    let aggregate = run.aggregate_mb_s();
    let best = run.max_session_mb_s();
    assert!(
        aggregate >= best,
        "FAIL: aggregate throughput {aggregate:.1} MB/s below best single session {best:.1} MB/s"
    );

    let cfg2 = platform();
    let (run2, _) = one_run(&cfg2);
    assert_eq!(run.aggregate_bytes, run2.aggregate_bytes);
    for (a, b) in run.sessions.iter().zip(&run2.sessions) {
        assert_eq!((a.id, a.bytes, a.end), (b.id, b.bytes, b.end));
    }

    println!(
        "  aggregate {:.1} MB/s >= best session {:.1} MB/s; cross-file stall {:.3} s; \
         {rejected} hint(s) rejected",
        aggregate,
        best,
        cross_total as f64 / 1e9
    );

    write_report(
        "service_smoke.profile.json",
        &Json::obj()
            .with("benchmark", "service_smoke")
            .with("sessions", NSESSIONS as u64)
            .with("servers", NSERVERS as u64)
            .with("datasets", cluster.meta().len() as u64)
            .with("aggregate_mb_s", aggregate)
            .with("max_session_mb_s", best)
            .with("aggregate_ge_max_session", aggregate >= best)
            .with("cross_file_stall_total_nanos", cross_total)
            .with("hints_rejected", rejected)
            .with("deterministic", true)
            .with("profile", profile.to_json(run.makespan.as_nanos())),
    );
    println!("service smoke OK");
}
