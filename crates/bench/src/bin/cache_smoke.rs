//! Client-cache smoke: the FLASH checkpoint through the page cache.
//!
//! Three runs of the Figure 7 checkpoint workload (64 processors, 8³
//! blocks, Frost-like platform), written through the independent per-block
//! path FLASH emits natively:
//!
//! 1. **Collective** — the paper's aggregated port (reference bytes).
//! 2. **Independent, uncached** — per-block `put_vara`s straight to the
//!    PFS; must be byte-identical to the collective file.
//! 3. **Independent, cached** — same accesses with `pnc_cache=enable` and
//!    a deliberately small budget (one stripe-sized page) so eviction,
//!    write-behind and coalescing all fire. Must be byte-identical again,
//!    faster than uncached, with nonzero hit and write-behind counters and
//!    a phase breakdown that still explains the whole makespan.
//!
//! Usage: `cargo run --release -p pnetcdf-bench --bin cache_smoke`

use flash_io::{run_flash_io_mode, FlashConfig, IoLibrary, OutputKind, WriteMode};
use hpc_sim::trace::Json;
use hpc_sim::SimConfig;
use pnetcdf_bench::report::{check_coverage, write_report};
use pnetcdf_pfs::{Pfs, StorageMode};

const NPROCS: usize = 64;
const NXB: u64 = 8;
const BLOCKS_PER_PROC: u64 = 4;

fn checkpoint_bytes(sim: SimConfig, mode: WriteMode) -> (Vec<u8>, flash_io::FlashResult) {
    let config = FlashConfig {
        nxb: NXB,
        nprocs: NPROCS,
        kind: OutputKind::Checkpoint,
        lib: IoLibrary::Pnetcdf,
        blocks_per_proc: BLOCKS_PER_PROC,
        attributes: false,
    };
    let pfs = Pfs::new(sim.clone(), StorageMode::Full);
    let res = run_flash_io_mode(config, sim, &pfs, mode);
    let bytes = pfs
        .open("flash_out")
        .expect("checkpoint written")
        .to_bytes();
    (bytes, res)
}

fn main() {
    println!("# Client-cache smoke: FLASH checkpoint, {NPROCS} procs, Frost platform");

    let (reference, coll) = checkpoint_bytes(SimConfig::asci_frost(), WriteMode::Collective);
    println!(
        "  collective: {:.1} MB/s, {} file bytes",
        coll.bandwidth_mb_s,
        reference.len()
    );

    let (uncached_bytes, uncached) =
        checkpoint_bytes(SimConfig::asci_frost(), WriteMode::uncached());
    assert_eq!(
        uncached_bytes, reference,
        "FAIL: the independent port produced different file contents"
    );
    println!(
        "  uncached:   {:.1} MB/s, byte-identical",
        uncached.bandwidth_mb_s
    );

    // One 256 KiB page of budget: every variable's flush evicts the last.
    let sim = SimConfig::asci_frost();
    sim.profile.set_enabled(true);
    let (cached_bytes, cached) = checkpoint_bytes(sim.clone(), WriteMode::cached(256 * 1024));
    assert_eq!(
        cached_bytes, reference,
        "FAIL: the page cache changed the file contents"
    );
    let cc = sim.profile.cache_counters();
    assert!(cc.hits > 0, "FAIL: no cache hits recorded: {cc:?}");
    assert!(
        cc.write_behind_flushes > 0 && cc.write_behind_bytes > 0,
        "FAIL: no write-behind recorded: {cc:?}"
    );
    assert!(cc.evictions > 0, "FAIL: tiny budget never evicted: {cc:?}");
    assert!(
        cached.bandwidth_mb_s > uncached.bandwidth_mb_s,
        "FAIL: cache did not improve bandwidth ({:.1} vs {:.1} MB/s)",
        cached.bandwidth_mb_s,
        uncached.bandwidth_mb_s
    );
    let profile = sim.profile.snapshot().to_json(cached.time.as_nanos());
    check_coverage(&profile, 0.05);
    println!(
        "  cached:     {:.1} MB/s, byte-identical; {} hits, {} evictions, {} flushed",
        cached.bandwidth_mb_s,
        cc.hits,
        cc.evictions,
        pnetcdf_bench::table::fmt_bytes(cc.write_behind_bytes)
    );

    write_report(
        "cache_smoke.profile.json",
        &Json::obj()
            .with("benchmark", "cache_smoke")
            .with("nprocs", NPROCS as u64)
            .with("blocks_per_proc", BLOCKS_PER_PROC)
            .with("collective_mb_s", coll.bandwidth_mb_s)
            .with("uncached_mb_s", uncached.bandwidth_mb_s)
            .with("cached_mb_s", cached.bandwidth_mb_s)
            .with("byte_identical", true)
            .with("profile", profile),
    );
    println!("cache smoke OK");
}
