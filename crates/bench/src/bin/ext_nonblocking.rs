//! Extension: nonblocking iput + `wait_all` cross-request aggregation on
//! the FLASH I/O checkpoint.
//!
//! The blocking port issues one collective round per variable — ~29 rounds
//! of two-phase exchange, each paying its own synchronization and its own
//! (smaller, less contiguous) file accesses. The nonblocking port queues
//! every variable with `iput_vara` and drains the whole file with ONE
//! `wait_all`: requests merge into a single sorted run list and one packed
//! staging buffer, issued as a single collective write. Same bytes, a
//! fraction of the rounds.
//!
//! Two checks:
//!  * aggregate checkpoint bandwidth, blocking vs aggregated, up to 64
//!    procs (virtual time, cost-only storage) — expect >= 1.3x at 64;
//!  * byte-identity of the two output files on a small, fully-stored run.
//!
//! Usage: `cargo run --release -p pnetcdf-bench --bin ext_nonblocking`

use flash_io::writers::pnetcdf as flash_writer;
use flash_io::{BlockMesh, OutputKind};
use hpc_sim::trace::Json;
use hpc_sim::SimConfig;
use pnetcdf_bench::report::write_report;
use pnetcdf_bench::table::print_series;
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

/// One FLASH checkpoint write; returns (bytes, aggregate MB/s, profile).
fn checkpoint(nprocs: usize, blocks_per_proc: u64, aggregate: bool) -> (u64, f64, Json) {
    let sim = SimConfig::asci_frost();
    sim.profile.set_enabled(true);
    let pfs = Pfs::new(sim.clone(), StorageMode::CostOnly);
    let mesh = BlockMesh {
        nxb: 8,
        blocks_per_proc,
        nprocs,
    };
    let run = run_world(nprocs, sim.clone(), move |comm| {
        if aggregate {
            flash_writer::write(comm, &pfs, &mesh, OutputKind::Checkpoint, "ckpt").unwrap()
        } else {
            flash_writer::write_blocking(comm, &pfs, &mesh, OutputKind::Checkpoint, "ckpt").unwrap()
        }
    });
    let profile = sim.profile.snapshot().to_json(run.makespan.as_nanos());
    let bytes = run.results[0];
    (
        bytes,
        bytes as f64 / run.makespan.as_secs_f64() / 1e6,
        profile,
    )
}

/// Write the checkpoint both ways on a small fully-stored PFS and return
/// the two file images.
fn file_images() -> (Vec<u8>, Vec<u8>) {
    let mut out = Vec::new();
    for aggregate in [false, true] {
        let sim = SimConfig::test_small();
        let pfs = Pfs::new(sim.clone(), StorageMode::Full);
        let pfs2 = pfs.clone();
        let mesh = BlockMesh {
            nxb: 8,
            blocks_per_proc: 2,
            nprocs: 4,
        };
        run_world(4, sim, move |comm| {
            if aggregate {
                flash_writer::write(comm, &pfs2, &mesh, OutputKind::Checkpoint, "id").unwrap()
            } else {
                flash_writer::write_blocking(comm, &pfs2, &mesh, OutputKind::Checkpoint, "id")
                    .unwrap()
            }
        });
        out.push(pfs.open("id").unwrap().to_bytes());
    }
    (out.remove(0), out.remove(0))
}

fn main() {
    println!("# Extension: nonblocking iput/wait_all aggregation (FLASH checkpoint, 8^3 blocks)");
    println!("# one collective round per file vs one per variable (~29)");

    let blocks_per_proc = 80u64;
    let procs = [16usize, 32, 64];
    let xs: Vec<String> = procs.iter().map(|p| p.to_string()).collect();
    let mut blocking = Vec::new();
    let mut aggregated = Vec::new();
    let mut runs = Vec::new();
    for &p in &procs {
        let (bytes, bw_b, prof_b) = checkpoint(p, blocks_per_proc, false);
        let (_, bw_a, prof_a) = checkpoint(p, blocks_per_proc, true);
        for (path, bw, profile) in [("blocking", bw_b, prof_b), ("aggregated", bw_a, prof_a)] {
            runs.push(
                Json::obj()
                    .with("path", path)
                    .with("nprocs", p)
                    .with("bytes", bytes)
                    .with("bandwidth_mb_s", bw)
                    .with("profile", profile),
            );
        }
        blocking.push(bw_b);
        aggregated.push(bw_a);
        eprintln!(
            "  done: {p} procs ({}): blocking {bw_b:.1} MB/s, aggregated {bw_a:.1} MB/s ({:.2}x)",
            pnetcdf_bench::table::fmt_bytes(bytes),
            bw_a / bw_b,
        );
    }
    print_series(
        "FLASH checkpoint write bandwidth",
        "path",
        &xs,
        &[
            ("blocking".to_string(), blocking.clone()),
            ("aggregated".to_string(), aggregated.clone()),
        ],
        "MB/s",
    );
    let ratio = aggregated.last().unwrap() / blocking.last().unwrap();
    println!("\naggregated/blocking at 64 procs: {ratio:.2}x (target >= 1.30x)");
    write_report(
        "ext_nonblocking.profile.json",
        &Json::obj()
            .with("benchmark", "ext_nonblocking")
            .with("runs", Json::Arr(runs)),
    );

    let (img_blocking, img_aggregated) = file_images();
    let identical = img_blocking == img_aggregated;
    println!(
        "byte-identity (4 procs, full storage): {} ({} bytes)",
        if identical { "IDENTICAL" } else { "MISMATCH" },
        img_blocking.len()
    );
    assert!(
        identical,
        "aggregated checkpoint must match blocking byte-for-byte"
    );
    assert!(
        ratio >= 1.3,
        "aggregation speedup {ratio:.2}x below the 1.3x target"
    );
}
