//! Ablation: header I/O strategy.
//!
//! PnetCDF's design (paper §4.2.1): "let the root process fetch the file
//! header, broadcast it to all processes when opening a file" and keep a
//! local copy, versus the naive alternative of every rank reading the
//! header from the file itself. With P ranks hammering the same small
//! region the naive approach serializes on the I/O servers; the broadcast
//! costs log(P) network latencies.
//!
//! Usage: `cargo run --release -p pnetcdf-bench --bin ablation_header`

use hpc_sim::{SimConfig, Time};
use pnetcdf::{Dataset, Info, NcType, Version};
use pnetcdf_bench::table::print_series;
use pnetcdf_mpi::{run_world, Datatype};
use pnetcdf_mpio::{MpiFile, OpenMode};
use pnetcdf_pfs::{Pfs, StorageMode};

/// Create a dataset with a realistically fat header (many variables and
/// attributes), returning its name.
fn make_dataset(pfs: &Pfs, cfg: &SimConfig) -> u64 {
    let pfs = pfs.clone();
    let run = run_world(1, cfg.clone(), move |comm| {
        let mut ds = Dataset::create(comm, &pfs, "hdr.nc", Version::Cdf1, &Info::new()).unwrap();
        let t = ds.def_dim("time", 0).unwrap();
        let y = ds.def_dim("y", 64).unwrap();
        let x = ds.def_dim("x", 64).unwrap();
        for i in 0..50 {
            let v = ds
                .def_var(&format!("variable_{i:03}"), NcType::Float, &[t, y, x])
                .unwrap();
            ds.put_vatt_text(v, "units", "kelvin").unwrap();
            ds.put_vatt_text(v, "long_name", "a reasonably descriptive variable name")
                .unwrap();
        }
        ds.enddef().unwrap();
        let size = ds.layout().data_start;
        ds.close().unwrap();
        size
    });
    run.results[0]
}

/// PnetCDF's strategy: rank 0 reads, broadcast (this is `Dataset::open`).
fn open_bcast(pfs: &Pfs, cfg: &SimConfig, nprocs: usize) -> Time {
    let pfs = pfs.clone();
    let run = run_world(nprocs, cfg.clone(), move |comm| {
        let t0 = comm.now();
        let ds = Dataset::open(comm, &pfs, "hdr.nc", true, &Info::new()).unwrap();
        let t = comm.now() - t0;
        ds.close().unwrap();
        t
    });
    run.results.into_iter().max().unwrap()
}

/// The naive strategy: every rank reads the header bytes itself.
fn open_all_read(pfs: &Pfs, cfg: &SimConfig, nprocs: usize, header_len: u64) -> Time {
    let pfs = pfs.clone();
    let run = run_world(nprocs, cfg.clone(), move |comm| {
        let t0 = comm.now();
        let f = MpiFile::open(
            comm,
            &pfs,
            "hdr.nc",
            OpenMode::ReadOnly,
            &pnetcdf_mpi::Info::new(),
        )
        .unwrap();
        let mut buf = vec![0u8; header_len as usize];
        let mem = Datatype::contiguous(buf.len(), Datatype::byte());
        f.read_at(0, &mut buf, 1, &mem).unwrap();
        let (header, _) = pnetcdf_format::Header::decode(&buf).unwrap();
        assert_eq!(header.vars.len(), 50);
        comm.barrier().unwrap();
        comm.now() - t0
    });
    run.results.into_iter().max().unwrap()
}

fn main() {
    let cfg = SimConfig::sdsc_blue_horizon();
    let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
    let header_len = make_dataset(&pfs, &cfg);
    println!("# Ablation: header I/O strategy (50-variable header, {header_len} bytes)");

    let procs = [1usize, 2, 4, 8, 16, 32];
    let xs: Vec<String> = procs.iter().map(|p| p.to_string()).collect();
    let bcast: Vec<f64> = procs
        .iter()
        .map(|&p| {
            pfs.reset_timing();
            open_bcast(&pfs, &cfg, p).as_secs_f64() * 1e3
        })
        .collect();
    let naive: Vec<f64> = procs
        .iter()
        .map(|&p| {
            pfs.reset_timing();
            open_all_read(&pfs, &cfg, p, header_len).as_secs_f64() * 1e3
        })
        .collect();
    print_series(
        "Dataset open latency",
        "strategy",
        &xs,
        &[
            ("rank0+bcast".to_string(), bcast),
            ("all-ranks-read".to_string(), naive),
        ],
        "ms",
    );
    println!("\nPnetCDF uses rank0+bcast; every define/inquiry after open is then");
    println!("a pure local-memory operation on the cached header copy.");
}
