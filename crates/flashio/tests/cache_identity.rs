//! The page cache must be invisible in the bytes: a FLASH checkpoint
//! written through the cached independent path must equal the uncached
//! independent run and the collective (two-phase) run bit for bit.

use flash_io::{run_flash_io_mode, FlashConfig, FlashResult, IoLibrary, OutputKind, WriteMode};
use hpc_sim::SimConfig;
use pnetcdf_pfs::{Pfs, StorageMode};

fn checkpoint_bytes(mode: WriteMode) -> (Vec<u8>, FlashResult) {
    let sim = SimConfig::test_small();
    let config = FlashConfig {
        nxb: 8,
        nprocs: 8,
        kind: OutputKind::Checkpoint,
        lib: IoLibrary::Pnetcdf,
        blocks_per_proc: 4,
        attributes: false,
    };
    let pfs = Pfs::new(sim.clone(), StorageMode::Full);
    let res = run_flash_io_mode(config, sim, &pfs, mode);
    let bytes = pfs.open("flash_out").expect("output exists").to_bytes();
    (bytes, res)
}

#[test]
fn cached_checkpoint_is_byte_identical() {
    let (collective, _) = checkpoint_bytes(WriteMode::Collective);
    let (uncached, _) = checkpoint_bytes(WriteMode::uncached());
    let (cached, _) = checkpoint_bytes(WriteMode::cached(4 * 1024 * 1024));
    // A tiny cache forces evictions mid-write; the bytes must still match.
    let (tiny, _) = checkpoint_bytes(WriteMode::cached(64 * 1024));
    assert!(!collective.is_empty());
    assert_eq!(
        uncached, collective,
        "independent and collective ports must produce the same file"
    );
    assert_eq!(cached, uncached, "cache must not change file contents");
    assert_eq!(tiny, uncached, "evicting cache must not change contents");
}
