//! Correctness of the FLASH I/O writers: the PnetCDF-produced checkpoint is
//! a valid netCDF file whose contents match the generated mesh, and both
//! writers run all three output kinds.

use flash_io::{run_flash_io, BlockMesh, FlashConfig, IoLibrary, OutputKind};
use hpc_sim::SimConfig;
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

fn cfg() -> SimConfig {
    SimConfig::test_small()
}

#[test]
fn pnetcdf_checkpoint_contents_verify_serially() {
    // Tiny mesh so the file stays small: 4 blocks of 4^3 per proc.
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    let mesh = BlockMesh {
        nxb: 4,
        blocks_per_proc: 4,
        nprocs: 2,
    };
    let pfs2 = pfs.clone();
    run_world(2, cfg(), move |c| {
        flash_io::writers::pnetcdf::write(c, &pfs2, &mesh, OutputKind::Checkpoint, "ck.nc")
            .unwrap();
    });

    let bytes = pfs.open("ck.nc").unwrap().to_bytes();
    let mut f = netcdf_serial::NcFile::open(netcdf_serial::MemStore::from_bytes(bytes)).unwrap();
    // 5 metadata vars + 24 unknowns.
    assert_eq!(f.header().vars.len(), 29);

    let dens = f.var_id("dens").unwrap();
    let v: Vec<f64> = f.get_vara(dens, &[5, 0, 0, 0], &[1, 4, 4, 4]).unwrap();
    // Global block 5 belongs to rank 1; var "dens" is index 0.
    for (cell, &got) in v.iter().enumerate() {
        assert_eq!(got, mesh.cell_value(0, 5, cell as u64));
    }

    let lref = f.var_id("lrefine").unwrap();
    let levels: Vec<i32> = f.get_var(lref).unwrap();
    assert_eq!(levels.len(), 8);
    assert_eq!(levels[0], 1);
    assert_eq!(levels[5], 1 + 5_i32);

    let bnd = f.var_id("bndbox").unwrap();
    let bb: Vec<f64> = f.get_vara(bnd, &[3, 0, 0], &[1, 3, 2]).unwrap();
    assert!(bb[0] < bb[1]);
}

#[test]
fn both_writers_handle_all_output_kinds() {
    for lib in [IoLibrary::Pnetcdf, IoLibrary::Hdf5] {
        for kind in [
            OutputKind::Checkpoint,
            OutputKind::Plotfile,
            OutputKind::PlotfileCorners,
        ] {
            let config = FlashConfig {
                nxb: 4,
                nprocs: 2,
                kind,
                lib,
                blocks_per_proc: 2,
                attributes: true,
            };
            let res = run_flash_io(config, cfg(), StorageMode::Full);
            assert!(res.bytes > 0, "{lib:?} {kind:?}");
            assert!(res.bandwidth_mb_s > 0.0, "{lib:?} {kind:?}");
        }
    }
}

#[test]
fn hdf5_checkpoint_reads_back() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    let mesh = BlockMesh {
        nxb: 4,
        blocks_per_proc: 2,
        nprocs: 2,
    };
    let pfs2 = pfs.clone();
    run_world(2, cfg(), move |c| {
        flash_io::writers::hdf5::write(c, &pfs2, &mesh, OutputKind::Checkpoint, "ck.h5").unwrap();
        // Re-open and verify a block of the first unknown.
        let mut f =
            hdf5_sim::H5File::open(c, &pfs2, "ck.h5", true, &pnetcdf_mpi::Info::new()).unwrap();
        let d = f.open_dataset("dens").unwrap();
        assert_eq!(d.dims(), &[4, 4, 4, 4]);
        let vals: Vec<f64> = d.read_all(&mut f, &[2, 0, 0, 0], &[1, 4, 4, 4]).unwrap();
        for (cell, &got) in vals.iter().enumerate() {
            assert_eq!(got, mesh.cell_value(0, 2, cell as u64));
        }
        f.close().unwrap();
    });
}

#[test]
fn pnetcdf_beats_hdf5_on_flash_pattern() {
    // The headline qualitative claim of Figure 7, at miniature scale.
    let mk = |lib| FlashConfig {
        nxb: 8,
        nprocs: 4,
        kind: OutputKind::Checkpoint,
        lib,
        blocks_per_proc: 8,
        attributes: false,
    };
    let sim = SimConfig::asci_frost();
    let p = run_flash_io(mk(IoLibrary::Pnetcdf), sim.clone(), StorageMode::CostOnly);
    let h = run_flash_io(mk(IoLibrary::Hdf5), sim, StorageMode::CostOnly);
    assert!(
        p.bandwidth_mb_s > h.bandwidth_mb_s,
        "PnetCDF {:.1} MB/s should beat HDF5 {:.1} MB/s",
        p.bandwidth_mb_s,
        h.bandwidth_mb_s
    );
}
