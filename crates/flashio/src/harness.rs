//! Driver: run one FLASH I/O configuration and report aggregate bandwidth.

use hpc_sim::{SimConfig, Time};
use pnetcdf_mpi::run_world;
use pnetcdf_mpi::Info;
use pnetcdf_pfs::{Pfs, StorageMode};

use crate::mesh::BlockMesh;
use crate::writers;

/// Which of the three output files to produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputKind {
    /// 24 unknowns, double precision.
    Checkpoint,
    /// 4 variables, single precision, cell-centered.
    Plotfile,
    /// 4 variables, single precision, corner data (nxb+1 per dim).
    PlotfileCorners,
}

impl OutputKind {
    /// Short label used in output tables.
    pub fn label(self) -> &'static str {
        match self {
            OutputKind::Checkpoint => "checkpoint",
            OutputKind::Plotfile => "plotfile",
            OutputKind::PlotfileCorners => "plotfile+corners",
        }
    }
}

/// Which library writes the file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoLibrary {
    Pnetcdf,
    Hdf5,
}

impl IoLibrary {
    /// Short label used in output tables.
    pub fn label(self) -> &'static str {
        match self {
            IoLibrary::Pnetcdf => "PnetCDF",
            IoLibrary::Hdf5 => "HDF5",
        }
    }
}

/// One benchmark configuration.
#[derive(Clone, Copy, Debug)]
pub struct FlashConfig {
    /// Block side length (8 or 16 in the paper).
    pub nxb: u64,
    /// Number of processors.
    pub nprocs: usize,
    /// Output file kind.
    pub kind: OutputKind,
    /// Library under test.
    pub lib: IoLibrary,
    /// Blocks per processor (80 in the paper).
    pub blocks_per_proc: u64,
    /// Write the per-variable attributes the original benchmark carried
    /// (the paper's port removed them; `false` reproduces the paper).
    pub attributes: bool,
}

impl FlashConfig {
    /// The paper's setup for the given parameters.
    pub fn paper(nxb: u64, nprocs: usize, kind: OutputKind, lib: IoLibrary) -> FlashConfig {
        FlashConfig {
            nxb,
            nprocs,
            kind,
            lib,
            blocks_per_proc: 80,
            attributes: false,
        }
    }
}

/// How the PnetCDF writer issues its data-mode accesses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WriteMode {
    /// The paper's port: aggregated nonblocking puts flushed collectively.
    Collective,
    /// Collective mode with MPI_Info hint pairs passed to `ncmpi_create`,
    /// for steering the two-phase engine (`cb_buffer_size`,
    /// `pnc_cb_pipeline`, ...). PnetCDF only.
    CollectiveHints {
        /// `(key, value)` hint pairs for the info object.
        info: Vec<(String, String)>,
    },
    /// Independent data mode, one put per AMR block, with the given MPI_Info
    /// hint pairs passed to `ncmpi_create` (e.g. `pnc_cache=enable`).
    /// PnetCDF only — HDF5 has no independent-block port here.
    IndependentBlocks {
        /// `(key, value)` hint pairs for the info object.
        info: Vec<(String, String)>,
    },
}

impl WriteMode {
    /// Independent-block mode with the client page cache enabled and the
    /// given byte budget.
    pub fn cached(cache_size: usize) -> WriteMode {
        WriteMode::IndependentBlocks {
            info: vec![
                ("pnc_cache".into(), "enable".into()),
                ("pnc_cache_size".into(), cache_size.to_string()),
            ],
        }
    }

    /// Independent-block mode without the cache (the uncached baseline).
    pub fn uncached() -> WriteMode {
        WriteMode::IndependentBlocks { info: Vec::new() }
    }

    /// Collective mode with explicit two-phase hints. `pipeline=false`
    /// adds `pnc_cb_pipeline=disable` (the serial A/B baseline).
    pub fn collective_hints(cb_buffer_size: usize, pipeline: bool) -> WriteMode {
        let mut info = vec![("cb_buffer_size".to_string(), cb_buffer_size.to_string())];
        if !pipeline {
            info.push(("pnc_cb_pipeline".into(), "disable".into()));
        }
        WriteMode::CollectiveHints { info }
    }
}

/// Result of one run.
#[derive(Clone, Copy, Debug)]
pub struct FlashResult {
    /// Array bytes written (all ranks).
    pub bytes: u64,
    /// Virtual makespan of the whole operation (create..close).
    pub time: Time,
    /// Aggregate bandwidth in MB/s.
    pub bandwidth_mb_s: f64,
}

/// Run one configuration on a fresh PFS under `sim` and return the
/// aggregate-bandwidth result.
pub fn run_flash_io(config: FlashConfig, sim: SimConfig, storage: StorageMode) -> FlashResult {
    let pfs = Pfs::new(sim.clone(), storage);
    run_flash_io_on(config, sim, &pfs)
}

/// Run one configuration against a caller-supplied PFS. The caller keeps a
/// handle on the file system, so it can inspect the produced file bytes
/// afterwards (e.g. to compare a faulty run against a fault-free one).
pub fn run_flash_io_on(config: FlashConfig, sim: SimConfig, pfs: &Pfs) -> FlashResult {
    run_flash_io_mode(config, sim, pfs, WriteMode::Collective)
}

/// Run one configuration with an explicit data-mode access strategy.
/// `WriteMode::IndependentBlocks` is PnetCDF-only and panics on HDF5.
pub fn run_flash_io_mode(
    config: FlashConfig,
    sim: SimConfig,
    pfs: &Pfs,
    mode: WriteMode,
) -> FlashResult {
    let pfs = pfs.clone();
    let mesh = BlockMesh {
        nxb: config.nxb,
        blocks_per_proc: config.blocks_per_proc,
        nprocs: config.nprocs,
    };
    let kind = config.kind;
    let lib = config.lib;
    let attrs = config.attributes;
    let run = run_world(config.nprocs, sim, move |comm| match (lib, &mode) {
        (IoLibrary::Pnetcdf, WriteMode::Collective) => {
            writers::pnetcdf::write_with(comm, &pfs, &mesh, kind, "flash_out", attrs)
                .expect("pnetcdf write")
        }
        (IoLibrary::Pnetcdf, WriteMode::CollectiveHints { info }) => {
            let mut i = Info::new();
            for (k, v) in info {
                i = i.with(k, v);
            }
            writers::pnetcdf::write_collective(comm, &pfs, &mesh, kind, "flash_out", &i)
                .expect("pnetcdf collective write")
        }
        (IoLibrary::Pnetcdf, WriteMode::IndependentBlocks { info }) => {
            let mut i = Info::new();
            for (k, v) in info {
                i = i.with(k, v);
            }
            writers::pnetcdf::write_indep_blocks(comm, &pfs, &mesh, kind, "flash_out", &i)
                .expect("pnetcdf independent write")
        }
        (IoLibrary::Hdf5, WriteMode::Collective) => {
            writers::hdf5::write_with(comm, &pfs, &mesh, kind, "flash_out", attrs)
                .expect("hdf5 write")
        }
        (IoLibrary::Hdf5, WriteMode::IndependentBlocks { .. })
        | (IoLibrary::Hdf5, WriteMode::CollectiveHints { .. }) => {
            panic!("hinted and independent-block modes are implemented for the PnetCDF writer only")
        }
    });
    let bytes = run.results[0];
    let time = run.makespan;
    FlashResult {
        bytes,
        time,
        bandwidth_mb_s: bytes as f64 / time.as_secs_f64() / 1e6,
    }
}
