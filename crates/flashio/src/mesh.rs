//! FLASH's in-memory data structures: guarded AMR blocks and their
//! metadata, generated deterministically.

/// Number of guard cells on each side of a block (FLASH's `nguard`).
pub const NGUARD: u64 = 4;

/// Unknowns held per cell in a checkpoint (FLASH's `nvar`).
pub const NUNK: usize = 24;

/// Variables written to plotfiles.
pub const NPLOT: usize = 4;

/// The canonical unknown names of the FLASH hydro solver.
pub const UNK_NAMES: [&str; NUNK] = [
    "dens", "velx", "vely", "velz", "pres", "ener", "temp", "gamc", "game", "enuc", "gpot", "flam",
    "c12_", "o16_", "ne20", "mg24", "si28", "s32_", "ar36", "ca40", "ti44", "cr48", "fe52", "ni56",
];

/// Description of one rank's share of the AMR mesh.
#[derive(Clone, Copy, Debug)]
pub struct BlockMesh {
    /// Cells per block per dimension (8 or 16 in the paper).
    pub nxb: u64,
    /// Blocks held by each processor (80 in the paper).
    pub blocks_per_proc: u64,
    /// Number of processors.
    pub nprocs: usize,
}

impl BlockMesh {
    /// The paper's configuration: 80 blocks of `nxb`³ per processor.
    pub fn paper(nxb: u64, nprocs: usize) -> BlockMesh {
        BlockMesh {
            nxb,
            blocks_per_proc: 80,
            nprocs,
        }
    }

    /// Total blocks across all processors.
    pub fn total_blocks(&self) -> u64 {
        self.blocks_per_proc * self.nprocs as u64
    }

    /// First global block id of `rank`.
    pub fn first_block(&self, rank: usize) -> u64 {
        rank as u64 * self.blocks_per_proc
    }

    /// Cells per block (interior only).
    pub fn cells_per_block(&self) -> u64 {
        self.nxb * self.nxb * self.nxb
    }

    /// Cells per block including the corner extension (plotfile w/corners).
    pub fn corner_cells_per_block(&self) -> u64 {
        (self.nxb + 1).pow(3)
    }

    /// Bytes one checkpoint writes per processor (24 unknowns, f64).
    pub fn checkpoint_bytes_per_proc(&self) -> u64 {
        self.blocks_per_proc * self.cells_per_block() * NUNK as u64 * 8
    }

    /// Deterministic cell value for (variable, global block, cell index).
    /// Cheap enough to regenerate per unknown, so a rank never holds more
    /// than one unknown's guarded blocks at a time.
    pub fn cell_value(&self, var: usize, block: u64, cell: u64) -> f64 {
        (var as f64 + 1.0) * 1e3 + block as f64 + cell as f64 * 1e-6
    }

    /// One rank's data for `var` with guard cells stripped, for all of its
    /// blocks, in block-major order — the "contiguous user buffer" the
    /// benchmark writes from. `side` is the per-dimension cell count
    /// written (nxb, or nxb+1 for corner plots).
    pub fn interior_buffer(&self, rank: usize, var: usize, side: u64) -> Vec<f64> {
        // Fill a guarded block, then copy out the interior — the stripping
        // memcpy the real benchmark performs.
        let g = NGUARD;
        let gside = side + 2 * g;
        let mut out = Vec::with_capacity((self.blocks_per_proc * side * side * side) as usize);
        let mut guarded = vec![0f64; (gside * gside * gside) as usize];
        for b in 0..self.blocks_per_proc {
            let block = self.first_block(rank) + b;
            // Guarded block: interior cells get real values, guards get a
            // sentinel that must never reach the file.
            for z in 0..gside {
                for y in 0..gside {
                    for x in 0..gside {
                        let idx = (z * gside + y) * gside + x;
                        let interior = (g..g + side).contains(&z)
                            && (g..g + side).contains(&y)
                            && (g..g + side).contains(&x);
                        guarded[idx as usize] = if interior {
                            let cell = ((z - g) * side + (y - g)) * side + (x - g);
                            self.cell_value(var, block, cell)
                        } else {
                            f64::NAN // guard sentinel
                        };
                    }
                }
            }
            for z in g..g + side {
                for y in g..g + side {
                    let row = ((z * gside + y) * gside + g) as usize;
                    out.extend_from_slice(&guarded[row..row + side as usize]);
                }
            }
        }
        out
    }

    /// Block refinement levels for this rank's blocks.
    pub fn refine_levels(&self, rank: usize) -> Vec<i32> {
        (0..self.blocks_per_proc)
            .map(|b| 1 + ((self.first_block(rank) + b) % 6) as i32)
            .collect()
    }

    /// Node types (1 = leaf in FLASH).
    pub fn node_types(&self, rank: usize) -> Vec<i32> {
        (0..self.blocks_per_proc)
            .map(|b| {
                if (self.first_block(rank) + b) % 4 == 0 {
                    2
                } else {
                    1
                }
            })
            .collect()
    }

    /// Block center coordinates, `(blocks, 3)` row-major.
    pub fn coordinates(&self, rank: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.blocks_per_proc as usize * 3);
        for b in 0..self.blocks_per_proc {
            let gb = self.first_block(rank) + b;
            out.extend_from_slice(&[gb as f64 * 1.0, gb as f64 * 2.0, gb as f64 * 3.0]);
        }
        out
    }

    /// Block physical sizes, `(blocks, 3)`.
    pub fn block_sizes(&self, rank: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.blocks_per_proc as usize * 3);
        for b in 0..self.blocks_per_proc {
            let lref = 1 + ((self.first_block(rank) + b) % 6) as i32;
            let size = 1.0 / (1 << lref) as f64;
            out.extend_from_slice(&[size, size, size]);
        }
        out
    }

    /// Bounding boxes, `(blocks, 3, 2)`.
    pub fn bounding_boxes(&self, rank: usize) -> Vec<f64> {
        let coords = self.coordinates(rank);
        let sizes = self.block_sizes(rank);
        let mut out = Vec::with_capacity(self.blocks_per_proc as usize * 6);
        for b in 0..self.blocks_per_proc as usize {
            for d in 0..3 {
                let c = coords[b * 3 + d];
                let h = sizes[b * 3 + d] / 2.0;
                out.extend_from_slice(&[c - h, c + h]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_match_section_5_2() {
        // "In the 8x8x8 case each processor outputs approximately 8 MB and
        // in the 16x16x16 case approximately 60 MB."
        let m8 = BlockMesh::paper(8, 16);
        assert_eq!(m8.checkpoint_bytes_per_proc(), 80 * 512 * 24 * 8);
        let mb8 = m8.checkpoint_bytes_per_proc() as f64 / 1e6;
        assert!((7.0..9.0).contains(&mb8), "{mb8} MB");

        let m16 = BlockMesh::paper(16, 16);
        let mb16 = m16.checkpoint_bytes_per_proc() as f64 / 1e6;
        assert!((58.0..65.0).contains(&mb16), "{mb16} MB");

        // Plotfile sizes: ~1 MB and ~6 MB (4 vars, f32).
        let plot8 = 80 * m8.cells_per_block() * 4 * 4;
        assert!((0.5e6..1.5e6).contains(&(plot8 as f64)), "{plot8}");
        let plot16c = 80 * m16.corner_cells_per_block() * 4 * 4;
        assert!((5e6..8e6).contains(&(plot16c as f64)), "{plot16c}");
    }

    #[test]
    fn interior_buffer_strips_guards() {
        let m = BlockMesh::paper(8, 2);
        let buf = m.interior_buffer(1, 3, 8);
        assert_eq!(buf.len(), (80 * 512) as usize);
        // No guard sentinel leaked.
        assert!(buf.iter().all(|v| v.is_finite()));
        // Spot-check a value: rank 1, block 0 (global 80), first cell.
        assert_eq!(buf[0], m.cell_value(3, 80, 0));
        // Last cell of last block.
        assert_eq!(buf[buf.len() - 1], m.cell_value(3, 80 + 79, 511));
    }

    #[test]
    fn corner_buffer_has_extra_cells() {
        let m = BlockMesh::paper(8, 1);
        let buf = m.interior_buffer(0, 0, 9);
        assert_eq!(buf.len(), (80 * 729) as usize);
        assert!(buf.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn metadata_shapes() {
        let m = BlockMesh::paper(8, 4);
        assert_eq!(m.total_blocks(), 320);
        assert_eq!(m.first_block(2), 160);
        assert_eq!(m.refine_levels(0).len(), 80);
        assert_eq!(m.coordinates(1).len(), 240);
        assert_eq!(m.block_sizes(3).len(), 240);
        assert_eq!(m.bounding_boxes(0).len(), 480);
        // Bounding box sanity: lo < hi.
        let bb = m.bounding_boxes(0);
        for pair in bb.chunks_exact(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn unk_names_are_unique() {
        let mut names = UNK_NAMES.to_vec();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), NUNK);
    }
}
