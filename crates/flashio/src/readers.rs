//! FLASH restart (read-back) kernels — the paper's future work, §6: "we
//! are interested in seeing how read performance compares between PnetCDF
//! and HDF5; perhaps without the additional synchronization of writes the
//! performance is more comparable."
//!
//! Restart inverts the checkpoint pattern: every processor reads its 80
//! blocks of all unknowns plus the block metadata from an existing file.

use hdf5_sim::H5File;
use pnetcdf::{Dataset, Info};
use pnetcdf_mpi::Comm;
use pnetcdf_pfs::Pfs;

use crate::harness::OutputKind;
use crate::mesh::{BlockMesh, NUNK, UNK_NAMES};

/// Read a checkpoint back through PnetCDF; returns bytes read by all ranks.
pub fn read_pnetcdf(
    comm: &Comm,
    pfs: &Pfs,
    mesh: &BlockMesh,
    path: &str,
) -> pnetcdf::NcmpiResult<u64> {
    let bpp = mesh.blocks_per_proc;
    let first = mesh.first_block(comm.rank());
    let side = mesh.nxb;

    let mut ds = Dataset::open(comm, pfs, path, true, &Info::new())?;
    let mut bytes = 0u64;
    let lref = ds.inq_varid("lrefine")?;
    let levels: Vec<i32> = ds.get_vara_all(lref, &[first], &[bpp])?;
    bytes += levels.len() as u64 * 4;
    let coord = ds.inq_varid("coordinates")?;
    let coords: Vec<f64> = ds.get_vara_all(coord, &[first, 0], &[bpp, 3])?;
    bytes += coords.len() as u64 * 8;

    let start = [first, 0, 0, 0];
    let count = [bpp, side, side, side];
    for name in UNK_NAMES.iter().take(NUNK) {
        let v = ds.inq_varid(name)?;
        let vals: Vec<f64> = ds.get_vara_all(v, &start, &count)?;
        bytes += vals.len() as u64 * 8;
    }
    ds.close()?;
    Ok(bytes * comm.size() as u64)
}

/// Read a checkpoint back through HDF5-sim.
pub fn read_hdf5(comm: &Comm, pfs: &Pfs, mesh: &BlockMesh, path: &str) -> hdf5_sim::H5Result<u64> {
    let bpp = mesh.blocks_per_proc;
    let first = mesh.first_block(comm.rank());
    let side = mesh.nxb;

    let mut f = H5File::open(comm, pfs, path, true, &Info::new())?;
    let mut bytes = 0u64;
    {
        let d = f.open_dataset("lrefine")?;
        let levels: Vec<i32> = d.read_all(&mut f, &[first], &[bpp])?;
        bytes += levels.len() as u64 * 4;
    }
    {
        let d = f.open_dataset("coordinates")?;
        let coords: Vec<f64> = d.read_all(&mut f, &[first, 0], &[bpp, 3])?;
        bytes += coords.len() as u64 * 8;
    }
    let start = [first, 0, 0, 0];
    let count = [bpp, side, side, side];
    for name in UNK_NAMES.iter().take(NUNK) {
        let d = f.open_dataset(name)?;
        let vals: Vec<f64> = d.read_all(&mut f, &start, &count)?;
        bytes += vals.len() as u64 * 8;
    }
    f.close()?;
    Ok(bytes * comm.size() as u64)
}

/// Write a checkpoint then read it back, timing only the read phase.
/// Returns `(bytes_read, read_time)`.
pub fn run_restart(
    lib: crate::harness::IoLibrary,
    mesh: BlockMesh,
    sim: hpc_sim::SimConfig,
    storage: pnetcdf_pfs::StorageMode,
) -> (u64, hpc_sim::Time) {
    use crate::harness::IoLibrary;
    let pfs = Pfs::new(sim.clone(), storage);
    let run = pnetcdf_mpi::run_world(mesh.nprocs, sim, move |comm| {
        match lib {
            IoLibrary::Pnetcdf => {
                crate::writers::pnetcdf::write(comm, &pfs, &mesh, OutputKind::Checkpoint, "ck")
                    .expect("write");
            }
            IoLibrary::Hdf5 => {
                crate::writers::hdf5::write(comm, &pfs, &mesh, OutputKind::Checkpoint, "ck")
                    .expect("write");
            }
        }
        let t0 = comm.now();
        let bytes = match lib {
            IoLibrary::Pnetcdf => read_pnetcdf(comm, &pfs, &mesh, "ck").expect("read"),
            IoLibrary::Hdf5 => read_hdf5(comm, &pfs, &mesh, "ck").expect("read"),
        };
        (bytes, comm.now() - t0)
    });
    let bytes = run.results[0].0;
    let time = run.results.iter().map(|r| r.1).max().unwrap();
    (bytes, time)
}
