//! The FLASH I/O benchmark (paper §5.2).
//!
//! FLASH is a block-structured AMR astrophysics code; its I/O benchmark
//! recreates FLASH's primary data structures and produces three output
//! files — a checkpoint, a plotfile with centered data, and a plotfile with
//! corner data — with the same access pattern as the production code:
//! every processor holds 80 AMR sub-blocks of 8³ or 16³ cells (with a
//! perimeter of 4 guard cells that is stripped before writing), and each
//! file is a series of multidimensional arrays written blockwise
//! (`(Block, *, ...)` — the Z-partition pattern of Figure 5).
//!
//! * Checkpoint: 24 unknowns in double precision (~8 MB/proc at 8³,
//!   ~60 MB/proc at 16³) plus the block metadata arrays.
//! * Plotfiles: 4 variables in single precision (~1 MB/proc at 8³,
//!   ~6 MB/proc at 16³); the corner variant adds one cell per dimension.
//!
//! [`writers::pnetcdf`] and [`writers::hdf5`] implement the same output
//! through both libraries; [`harness`] runs a configuration and reports
//! aggregate bandwidth in virtual time.

pub mod harness;
pub mod mesh;
pub mod readers;
pub mod writers;

pub use harness::{
    run_flash_io, run_flash_io_mode, run_flash_io_on, FlashConfig, FlashResult, IoLibrary,
    OutputKind, WriteMode,
};
pub use mesh::BlockMesh;
