//! The two output paths of the benchmark: PnetCDF and HDF5-sim.
//!
//! Both writers produce the same logical content — the block metadata
//! arrays plus one `(tot_blocks, nb, nb, nb)` array per variable — from the
//! same contiguous user buffers, mirroring how the original benchmark's
//! Fortran I/O routines are shared verbatim with FLASH itself.

pub mod hdf5;
pub mod pnetcdf;
