//! FLASH output through HDF5-sim (the benchmark's original path: "produces
//! a checkpoint file, a plotfile with centered data, and a plotfile with
//! corner data, using parallel HDF5").

use hdf5_sim::{H5File, H5Result, H5Type};
use pnetcdf_mpi::{Comm, Info};
use pnetcdf_pfs::Pfs;

use crate::harness::OutputKind;
use crate::mesh::{BlockMesh, NPLOT, NUNK, UNK_NAMES};

/// Write one FLASH output file through HDF5-sim (no attributes, as in the
/// paper's port). Returns the bytes of array data written by all ranks.
pub fn write(
    comm: &Comm,
    pfs: &Pfs,
    mesh: &BlockMesh,
    kind: OutputKind,
    path: &str,
) -> H5Result<u64> {
    write_with(comm, pfs, mesh, kind, path, false)
}

/// Like [`write`], optionally restoring the per-variable attributes the
/// original benchmark carried. In HDF5 each attribute is its own dispersed
/// metadata write plus a synchronization.
pub fn write_with(
    comm: &Comm,
    pfs: &Pfs,
    mesh: &BlockMesh,
    kind: OutputKind,
    path: &str,
    attributes: bool,
) -> H5Result<u64> {
    let tot = mesh.total_blocks();
    let bpp = mesh.blocks_per_proc;
    let first = mesh.first_block(comm.rank());
    let side = match kind {
        OutputKind::PlotfileCorners => mesh.nxb + 1,
        _ => mesh.nxb,
    };
    let nvars = match kind {
        OutputKind::Checkpoint => NUNK,
        _ => NPLOT,
    };

    let mut f = H5File::create(comm, pfs, path, &Info::new())?;

    // Block metadata: each becomes its own dataset with its own collective
    // create/write/close — the HDF5 way.
    {
        let mut d = f.create_dataset("lrefine", H5Type::I32, &[tot])?;
        d.write_all(&mut f, &[first], &[bpp], &mesh.refine_levels(comm.rank()))?;
        d.close(&mut f)?;
    }
    {
        let mut d = f.create_dataset("node type", H5Type::I32, &[tot])?;
        d.write_all(&mut f, &[first], &[bpp], &mesh.node_types(comm.rank()))?;
        d.close(&mut f)?;
    }
    {
        let mut d = f.create_dataset("coordinates", H5Type::F64, &[tot, 3])?;
        d.write_all(
            &mut f,
            &[first, 0],
            &[bpp, 3],
            &mesh.coordinates(comm.rank()),
        )?;
        d.close(&mut f)?;
    }
    {
        let mut d = f.create_dataset("block size", H5Type::F64, &[tot, 3])?;
        d.write_all(
            &mut f,
            &[first, 0],
            &[bpp, 3],
            &mesh.block_sizes(comm.rank()),
        )?;
        d.close(&mut f)?;
    }
    {
        let mut d = f.create_dataset("bounding box", H5Type::F64, &[tot, 3, 2])?;
        d.write_all(
            &mut f,
            &[first, 0, 0],
            &[bpp, 3, 2],
            &mesh.bounding_boxes(comm.rank()),
        )?;
        d.close(&mut f)?;
    }

    // One dataset per unknown, created/opened/closed collectively each.
    let start = [first, 0, 0, 0];
    let count = [bpp, side, side, side];
    let dims = [tot, side, side, side];
    for (var, name) in UNK_NAMES.iter().take(nvars).enumerate() {
        let buf = mesh.interior_buffer(comm.rank(), var, side);
        match kind {
            OutputKind::Checkpoint => {
                let mut d = f.create_dataset(name, H5Type::F64, &dims)?;
                if attributes {
                    d.write_attribute(&mut f, "units", b"code units")?;
                    d.write_attribute(&mut f, "long_name", name.as_bytes())?;
                    d.write_attribute(&mut f, "minimum", &0.0f64.to_ne_bytes())?;
                    d.write_attribute(&mut f, "maximum", &1.0e10f64.to_ne_bytes())?;
                }
                d.write_all(&mut f, &start, &count, &buf)?;
                d.close(&mut f)?;
            }
            _ => {
                let f32buf: Vec<f32> = buf.iter().map(|&v| v as f32).collect();
                let mut d = f.create_dataset(name, H5Type::F32, &dims)?;
                if attributes {
                    d.write_attribute(&mut f, "units", b"code units")?;
                    d.write_attribute(&mut f, "long_name", name.as_bytes())?;
                }
                d.write_all(&mut f, &start, &count, &f32buf)?;
                d.close(&mut f)?;
            }
        }
    }
    f.close()?;

    let esize = match kind {
        OutputKind::Checkpoint => 8,
        _ => 4,
    };
    let meta_bytes = tot * (4 + 4 + 24 + 24 + 48);
    let data_bytes = tot * side * side * side * nvars as u64 * esize;
    Ok(meta_bytes + data_bytes)
}
