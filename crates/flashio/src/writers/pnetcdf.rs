//! FLASH output through PnetCDF (the port described in paper §5.2: "we
//! modified this benchmark, removed the part of code writing attributes,
//! ported it to PnetCDF").

use pnetcdf::{Dataset, Info, NcType, NcmpiResult, Version};
use pnetcdf_mpi::Comm;
use pnetcdf_pfs::Pfs;

use crate::harness::OutputKind;
use crate::mesh::{BlockMesh, NPLOT, NUNK, UNK_NAMES};

/// How the data-mode accesses are issued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PutMode {
    /// Nonblocking `iput` per access, one collective `wait_all` flush.
    Aggregate,
    /// One blocking collective per variable (the pre-aggregation port).
    Blocking,
    /// Independent data mode, one `put_vara` per AMR *block*: the
    /// small-strided pattern FLASH emits natively, served by the client
    /// page cache when `pnc_cache=enable` is in the info object.
    IndepBlocks,
}

/// Write one FLASH output file through PnetCDF (no attributes, as in the
/// paper's port). Returns the bytes of array data written by all ranks.
pub fn write(
    comm: &Comm,
    pfs: &Pfs,
    mesh: &BlockMesh,
    kind: OutputKind,
    path: &str,
) -> NcmpiResult<u64> {
    write_with(comm, pfs, mesh, kind, path, false)
}

/// Like [`write`], optionally restoring the per-variable attributes the
/// original benchmark carried. In PnetCDF every attribute lands in the one
/// header that rank 0 writes at `enddef` — near-free.
pub fn write_with(
    comm: &Comm,
    pfs: &Pfs,
    mesh: &BlockMesh,
    kind: OutputKind,
    path: &str,
    attributes: bool,
) -> NcmpiResult<u64> {
    write_impl(
        comm,
        pfs,
        mesh,
        kind,
        path,
        attributes,
        PutMode::Aggregate,
        &Info::new(),
    )
}

/// Like [`write`], but with caller-supplied MPI_Info hints reaching
/// `ncmpi_create` — the knob benchmarks use to steer the two-phase engine
/// (`cb_buffer_size`, `pnc_cb_pipeline=disable`, ...).
pub fn write_collective(
    comm: &Comm,
    pfs: &Pfs,
    mesh: &BlockMesh,
    kind: OutputKind,
    path: &str,
    info: &Info,
) -> NcmpiResult<u64> {
    write_impl(comm, pfs, mesh, kind, path, false, PutMode::Aggregate, info)
}

/// The pre-aggregation port: one blocking collective per variable (~29
/// collective rounds per checkpoint). Kept as the baseline the
/// `ext_nonblocking` benchmark compares the aggregated path against.
pub fn write_blocking(
    comm: &Comm,
    pfs: &Pfs,
    mesh: &BlockMesh,
    kind: OutputKind,
    path: &str,
) -> NcmpiResult<u64> {
    write_impl(
        comm,
        pfs,
        mesh,
        kind,
        path,
        false,
        PutMode::Blocking,
        &Info::new(),
    )
}

/// Independent-mode port: each rank writes its metadata and then every AMR
/// block with its own `put_vara` in independent data mode — the small,
/// per-block access pattern FLASH produces before any aggregation. `info`
/// reaches `ncmpi_create`, so `pnc_cache=enable` turns the client page
/// cache on underneath this traffic.
pub fn write_indep_blocks(
    comm: &Comm,
    pfs: &Pfs,
    mesh: &BlockMesh,
    kind: OutputKind,
    path: &str,
    info: &Info,
) -> NcmpiResult<u64> {
    write_impl(
        comm,
        pfs,
        mesh,
        kind,
        path,
        false,
        PutMode::IndepBlocks,
        info,
    )
}

#[allow(clippy::too_many_arguments)]
fn write_impl(
    comm: &Comm,
    pfs: &Pfs,
    mesh: &BlockMesh,
    kind: OutputKind,
    path: &str,
    attributes: bool,
    mode: PutMode,
    info: &Info,
) -> NcmpiResult<u64> {
    let tot = mesh.total_blocks();
    let bpp = mesh.blocks_per_proc;
    let first = mesh.first_block(comm.rank());
    let side = match kind {
        OutputKind::PlotfileCorners => mesh.nxb + 1,
        _ => mesh.nxb,
    };
    let nvars = match kind {
        OutputKind::Checkpoint => NUNK,
        _ => NPLOT,
    };

    let mut ds = Dataset::create(comm, pfs, path, Version::Cdf2, info)?;
    let d_blocks = ds.def_dim("blocks", tot)?;
    let d_z = ds.def_dim("z", side)?;
    let d_y = ds.def_dim("y", side)?;
    let d_x = ds.def_dim("x", side)?;
    let d_mdim = ds.def_dim("mdim", 3)?;
    let d_two = ds.def_dim("two", 2)?;

    let v_lref = ds.def_var("lrefine", NcType::Int, &[d_blocks])?;
    let v_node = ds.def_var("nodetype", NcType::Int, &[d_blocks])?;
    let v_coord = ds.def_var("coordinates", NcType::Double, &[d_blocks, d_mdim])?;
    let v_bsize = ds.def_var("blocksize", NcType::Double, &[d_blocks, d_mdim])?;
    let v_bnd = ds.def_var("bndbox", NcType::Double, &[d_blocks, d_mdim, d_two])?;
    let elem_type = match kind {
        OutputKind::Checkpoint => NcType::Double,
        _ => NcType::Float,
    };
    let mut unk_ids = Vec::with_capacity(nvars);
    for name in UNK_NAMES.iter().take(nvars) {
        let id = ds.def_var(name, elem_type, &[d_blocks, d_z, d_y, d_x])?;
        if attributes {
            ds.put_vatt_text(id, "units", "code units")?;
            ds.put_vatt_text(id, "long_name", name)?;
            ds.put_vatt(id, "minimum", pnetcdf::AttrValue::Double(vec![0.0]))?;
            ds.put_vatt(id, "maximum", pnetcdf::AttrValue::Double(vec![1.0e10]))?;
        }
        unk_ids.push(id);
    }
    if attributes {
        ds.put_gatt_text("file_creation_time", "2003-11-15 12:00:00")?;
        ds.put_gatt("time", pnetcdf::AttrValue::Double(vec![0.5]))?;
        ds.put_gatt("timestep", pnetcdf::AttrValue::Int(vec![42]))?;
    }
    ds.enddef()?;

    // Block metadata and unknowns. On the aggregated path every access is
    // queued as a nonblocking write and flushed by one collective `wait_all`
    // — a single two-phase round replaces the ~29 per-variable collective
    // rounds (5 metadata + NUNK/NPLOT unknowns) of the blocking port. The
    // independent port issues each access on its own in independent mode.
    if mode == PutMode::IndepBlocks {
        ds.begin_indep_data()?;
    }
    macro_rules! put {
        ($vid:expr, $start:expr, $count:expr, $vals:expr) => {
            match mode {
                PutMode::Aggregate => ds.iput_vara($vid, $start, $count, $vals).map(|_| ())?,
                PutMode::Blocking => ds.put_vara_all($vid, $start, $count, $vals)?,
                PutMode::IndepBlocks => ds.put_vara($vid, $start, $count, $vals)?,
            }
        };
    }
    put!(v_lref, &[first], &[bpp], &mesh.refine_levels(comm.rank()));
    put!(v_node, &[first], &[bpp], &mesh.node_types(comm.rank()));
    put!(
        v_coord,
        &[first, 0],
        &[bpp, 3],
        &mesh.coordinates(comm.rank())
    );
    put!(
        v_bsize,
        &[first, 0],
        &[bpp, 3],
        &mesh.block_sizes(comm.rank())
    );
    put!(
        v_bnd,
        &[first, 0, 0],
        &[bpp, 3, 2],
        &mesh.bounding_boxes(comm.rank())
    );

    // Unknowns. The aggregate/blocking ports issue one access per variable
    // from a contiguous stripped buffer; the independent port issues one
    // access per block, which is what FLASH's own loop structure produces.
    let start = [first, 0, 0, 0];
    let count = [bpp, side, side, side];
    let s3 = (side * side * side) as usize;
    for (var, &vid) in unk_ids.iter().enumerate() {
        let buf = mesh.interior_buffer(comm.rank(), var, side);
        if mode == PutMode::IndepBlocks {
            for b in 0..bpp {
                let bstart = [first + b, 0, 0, 0];
                let bcount = [1, side, side, side];
                let block = &buf[b as usize * s3..(b as usize + 1) * s3];
                match kind {
                    OutputKind::Checkpoint => ds.put_vara(vid, &bstart, &bcount, block)?,
                    _ => {
                        let f32buf: Vec<f32> = block.iter().map(|&v| v as f32).collect();
                        ds.put_vara(vid, &bstart, &bcount, &f32buf)?
                    }
                }
            }
        } else {
            match kind {
                OutputKind::Checkpoint => put!(vid, &start, &count, &buf),
                _ => {
                    let f32buf: Vec<f32> = buf.iter().map(|&v| v as f32).collect();
                    put!(vid, &start, &count, &f32buf)
                }
            };
        }
    }
    match mode {
        PutMode::Aggregate => ds.wait_all()?,
        PutMode::IndepBlocks => ds.end_indep_data()?,
        PutMode::Blocking => {}
    }
    ds.close()?;

    let meta_bytes = tot * (4 + 4 + 24 + 24 + 48);
    let data_bytes = tot * side * side * side * nvars as u64 * elem_type.size();
    Ok(meta_bytes + data_bytes)
}
