//! FLASH output through PnetCDF (the port described in paper §5.2: "we
//! modified this benchmark, removed the part of code writing attributes,
//! ported it to PnetCDF").

use pnetcdf::{Dataset, Info, NcType, NcmpiResult, Version};
use pnetcdf_mpi::Comm;
use pnetcdf_pfs::Pfs;

use crate::harness::OutputKind;
use crate::mesh::{BlockMesh, NPLOT, NUNK, UNK_NAMES};

/// Write one FLASH output file through PnetCDF (no attributes, as in the
/// paper's port). Returns the bytes of array data written by all ranks.
pub fn write(
    comm: &Comm,
    pfs: &Pfs,
    mesh: &BlockMesh,
    kind: OutputKind,
    path: &str,
) -> NcmpiResult<u64> {
    write_with(comm, pfs, mesh, kind, path, false)
}

/// Like [`write`], optionally restoring the per-variable attributes the
/// original benchmark carried. In PnetCDF every attribute lands in the one
/// header that rank 0 writes at `enddef` — near-free.
pub fn write_with(
    comm: &Comm,
    pfs: &Pfs,
    mesh: &BlockMesh,
    kind: OutputKind,
    path: &str,
    attributes: bool,
) -> NcmpiResult<u64> {
    write_impl(comm, pfs, mesh, kind, path, attributes, true)
}

/// The pre-aggregation port: one blocking collective per variable (~29
/// collective rounds per checkpoint). Kept as the baseline the
/// `ext_nonblocking` benchmark compares the aggregated path against.
pub fn write_blocking(
    comm: &Comm,
    pfs: &Pfs,
    mesh: &BlockMesh,
    kind: OutputKind,
    path: &str,
) -> NcmpiResult<u64> {
    write_impl(comm, pfs, mesh, kind, path, false, false)
}

fn write_impl(
    comm: &Comm,
    pfs: &Pfs,
    mesh: &BlockMesh,
    kind: OutputKind,
    path: &str,
    attributes: bool,
    aggregate: bool,
) -> NcmpiResult<u64> {
    let tot = mesh.total_blocks();
    let bpp = mesh.blocks_per_proc;
    let first = mesh.first_block(comm.rank());
    let side = match kind {
        OutputKind::PlotfileCorners => mesh.nxb + 1,
        _ => mesh.nxb,
    };
    let nvars = match kind {
        OutputKind::Checkpoint => NUNK,
        _ => NPLOT,
    };

    let mut ds = Dataset::create(comm, pfs, path, Version::Cdf2, &Info::new())?;
    let d_blocks = ds.def_dim("blocks", tot)?;
    let d_z = ds.def_dim("z", side)?;
    let d_y = ds.def_dim("y", side)?;
    let d_x = ds.def_dim("x", side)?;
    let d_mdim = ds.def_dim("mdim", 3)?;
    let d_two = ds.def_dim("two", 2)?;

    let v_lref = ds.def_var("lrefine", NcType::Int, &[d_blocks])?;
    let v_node = ds.def_var("nodetype", NcType::Int, &[d_blocks])?;
    let v_coord = ds.def_var("coordinates", NcType::Double, &[d_blocks, d_mdim])?;
    let v_bsize = ds.def_var("blocksize", NcType::Double, &[d_blocks, d_mdim])?;
    let v_bnd = ds.def_var("bndbox", NcType::Double, &[d_blocks, d_mdim, d_two])?;
    let elem_type = match kind {
        OutputKind::Checkpoint => NcType::Double,
        _ => NcType::Float,
    };
    let mut unk_ids = Vec::with_capacity(nvars);
    for name in UNK_NAMES.iter().take(nvars) {
        let id = ds.def_var(name, elem_type, &[d_blocks, d_z, d_y, d_x])?;
        if attributes {
            ds.put_vatt_text(id, "units", "code units")?;
            ds.put_vatt_text(id, "long_name", name)?;
            ds.put_vatt(id, "minimum", pnetcdf::AttrValue::Double(vec![0.0]))?;
            ds.put_vatt(id, "maximum", pnetcdf::AttrValue::Double(vec![1.0e10]))?;
        }
        unk_ids.push(id);
    }
    if attributes {
        ds.put_gatt_text("file_creation_time", "2003-11-15 12:00:00")?;
        ds.put_gatt("time", pnetcdf::AttrValue::Double(vec![0.5]))?;
        ds.put_gatt("timestep", pnetcdf::AttrValue::Int(vec![42]))?;
    }
    ds.enddef()?;

    // Block metadata and unknowns. On the aggregated path every access is
    // queued as a nonblocking write and flushed by one collective `wait_all`
    // — a single two-phase round replaces the ~29 per-variable collective
    // rounds (5 metadata + NUNK/NPLOT unknowns) of the blocking port.
    macro_rules! put {
        ($vid:expr, $start:expr, $count:expr, $vals:expr) => {
            if aggregate {
                ds.iput_vara($vid, $start, $count, $vals).map(|_| ())?
            } else {
                ds.put_vara_all($vid, $start, $count, $vals)?
            }
        };
    }
    put!(v_lref, &[first], &[bpp], &mesh.refine_levels(comm.rank()));
    put!(v_node, &[first], &[bpp], &mesh.node_types(comm.rank()));
    put!(
        v_coord,
        &[first, 0],
        &[bpp, 3],
        &mesh.coordinates(comm.rank())
    );
    put!(
        v_bsize,
        &[first, 0],
        &[bpp, 3],
        &mesh.block_sizes(comm.rank())
    );
    put!(
        v_bnd,
        &[first, 0, 0],
        &[bpp, 3, 2],
        &mesh.bounding_boxes(comm.rank())
    );

    // Unknowns, one access each, from contiguous stripped buffers.
    let start = [first, 0, 0, 0];
    let count = [bpp, side, side, side];
    for (var, &vid) in unk_ids.iter().enumerate() {
        let buf = mesh.interior_buffer(comm.rank(), var, side);
        match kind {
            OutputKind::Checkpoint => put!(vid, &start, &count, &buf),
            _ => {
                let f32buf: Vec<f32> = buf.iter().map(|&v| v as f32).collect();
                put!(vid, &start, &count, &f32buf)
            }
        };
    }
    if aggregate {
        ds.wait_all()?;
    }
    ds.close()?;

    let meta_bytes = tot * (4 + 4 + 24 + 24 + 48);
    let data_bytes = tot * side * side * side * nvars as u64 * elem_type.size();
    Ok(meta_bytes + data_bytes)
}
