//! Additional integration coverage: CDF-1 size limits, CDF-2 large
//! offsets, flexible strided access, hint edge cases, and stress rounds.

use hpc_sim::SimConfig;
use pnetcdf::{Dataset, Datatype, Info, NcType, NcmpiError, Version};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

fn cfg() -> SimConfig {
    SimConfig::test_small()
}

#[test]
fn cdf1_rejects_large_files_cdf2_accepts() {
    // Two 3 GiB variables: begins exceed 32 bits.
    let pfs = Pfs::new(cfg(), StorageMode::CostOnly);
    let run = run_world(2, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "big.nc", Version::Cdf1, &Info::new()).unwrap();
        let x = ds.def_dim("x", 1 << 30).unwrap(); // 1 Gi elements = 4 GiB of i32
        ds.def_var("a", NcType::Int, &[x]).unwrap();
        ds.def_var("b", NcType::Int, &[x]).unwrap();
        matches!(ds.enddef(), Err(NcmpiError::Format(_)))
    });
    assert!(
        run.results.iter().all(|&e| e),
        "CDF-1 must reject > 4 GiB begins"
    );

    // MetadataOnly keeps the header and these byte-sized writes while
    // discarding bulk data, so a sparse 8 GiB file costs no real memory.
    let pfs = Pfs::new(cfg(), StorageMode::MetadataOnly);
    run_world(2, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "big2.nc", Version::Cdf2, &Info::new()).unwrap();
        let x = ds.def_dim("x", 1 << 30).unwrap();
        let a = ds.def_var("a", NcType::Int, &[x]).unwrap();
        let b = ds.def_var("b", NcType::Int, &[x]).unwrap();
        ds.enddef().unwrap();
        // Write at the very end of the second variable (beyond 4 GiB).
        let off = (1u64 << 30) - 4;
        ds.put_vara_all(b, &[off + c.rank() as u64 * 2], &[2], &[7i32, 8])
            .unwrap();
        let back: Vec<i32> = ds.get_vara_all(b, &[off], &[4]).unwrap();
        assert_eq!(back, vec![7, 8, 7, 8]);
        let _ = a;
        ds.close().unwrap();
    });
}

#[test]
fn flexible_strided_write_matches_typed() {
    let write = |flexible: bool| -> Vec<u8> {
        let pfs = Pfs::new(cfg(), StorageMode::Full);
        let pfs2 = pfs.clone();
        run_world(2, cfg(), move |c| {
            let mut ds = Dataset::create(c, &pfs2, "s.nc", Version::Cdf1, &Info::new()).unwrap();
            let z = ds.def_dim("z", 4).unwrap();
            let x = ds.def_dim("x", 8).unwrap();
            let v = ds.def_var("a", NcType::Int, &[z, x]).unwrap();
            ds.enddef().unwrap();
            // Rank r writes every other column of rows 2r..2r+2.
            let start = [c.rank() as u64 * 2, 0];
            let count = [2, 4];
            let stride = [1, 2];
            let vals: Vec<i32> = (0..8).map(|i| c.rank() as i32 * 100 + i).collect();
            if flexible {
                let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_ne_bytes()).collect();
                let mem = Datatype::contiguous(8, Datatype::int());
                ds.put_vars_all_flexible(v, &start, &count, &stride, &bytes, 1, &mem)
                    .unwrap();
            } else {
                ds.put_vars_all(v, &start, &count, &stride, &vals).unwrap();
            }
            ds.close().unwrap();
        });
        pfs.open("s.nc").unwrap().to_bytes()
    };
    assert_eq!(write(true), write(false));
}

#[test]
fn flexible_api_rejects_size_mismatch() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(1, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "m.nc", Version::Cdf1, &Info::new()).unwrap();
        let x = ds.def_dim("x", 4).unwrap();
        let v = ds.def_var("a", NcType::Int, &[x]).unwrap();
        ds.enddef().unwrap();
        // Memory describes 3 ints but the access selects 4.
        let mem = Datatype::contiguous(3, Datatype::int());
        let buf = [0u8; 12];
        assert!(matches!(
            ds.put_vara_all_flexible(v, &[0], &[4], &buf, 1, &mem),
            Err(NcmpiError::InvalidArgument(_))
        ));
        ds.close().unwrap();
    });
}

#[test]
fn zero_sized_collective_participation() {
    // Some ranks contribute nothing to a collective write; all must still
    // participate and the data must land.
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(4, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "z.nc", Version::Cdf1, &Info::new()).unwrap();
        let x = ds.def_dim("x", 8).unwrap();
        let v = ds.def_var("a", NcType::Int, &[x]).unwrap();
        ds.enddef().unwrap();
        if c.rank() < 2 {
            let s = c.rank() as u64 * 4;
            let vals: Vec<i32> = (0..4).map(|i| (s + i) as i32).collect();
            ds.put_vara_all(v, &[s], &[4], &vals).unwrap();
        } else {
            ds.put_vara_all::<i32>(v, &[0], &[0], &[]).unwrap();
        }
        let all: Vec<i32> = ds.get_vara_all(v, &[0], &[8]).unwrap();
        assert_eq!(all, (0..8).collect::<Vec<i32>>());
        ds.close().unwrap();
    });
}

#[test]
fn char_variables_store_text() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(2, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "t.nc", Version::Cdf1, &Info::new()).unwrap();
        let n = ds.def_dim("len", 12).unwrap();
        let v = ds.def_var("label", NcType::Char, &[n]).unwrap();
        ds.enddef().unwrap();
        let text: &[u8] = if c.rank() == 0 { b"hello " } else { b"world!" };
        ds.put_vara_all(v, &[c.rank() as u64 * 6], &[6], text)
            .unwrap();
        let back: Vec<u8> = ds.get_vara_all(v, &[0], &[12]).unwrap();
        assert_eq!(&back, b"hello world!");
        ds.close().unwrap();
    });
}

#[test]
fn info_hints_survive_on_dataset() {
    // nc_header_align_size changes the data start.
    let aligned_start = |align: Option<&str>| -> u64 {
        let pfs = Pfs::new(cfg(), StorageMode::Full);
        let mut info = Info::new();
        if let Some(a) = align {
            info.set("nc_header_align_size", a);
        }
        let run = run_world(1, cfg(), move |c| {
            let mut ds = Dataset::create(c, &pfs, "a.nc", Version::Cdf1, &info).unwrap();
            let x = ds.def_dim("x", 4).unwrap();
            ds.def_var("v", NcType::Int, &[x]).unwrap();
            ds.enddef().unwrap();
            let s = ds.layout().data_start;
            ds.close().unwrap();
            s
        });
        run.results[0]
    };
    let default = aligned_start(None);
    let big = aligned_start(Some("1024"));
    assert_eq!(big % 1024, 0);
    assert!(big >= default);
}

#[test]
fn many_variables_many_rounds_stress() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(3, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "w.nc", Version::Cdf1, &Info::new()).unwrap();
        let x = ds.def_dim("x", 12).unwrap();
        let vars: Vec<usize> = (0..16)
            .map(|i| ds.def_var(&format!("v{i}"), NcType::Short, &[x]).unwrap())
            .collect();
        ds.enddef().unwrap();
        for (round, &v) in vars.iter().enumerate() {
            let s = c.rank() as u64 * 4;
            let vals: Vec<i16> = (0..4)
                .map(|i| (round * 100) as i16 + (s + i) as i16)
                .collect();
            ds.put_vara_all(v, &[s], &[4], &vals).unwrap();
        }
        for (round, &v) in vars.iter().enumerate() {
            let all: Vec<i16> = ds.get_vara_all(v, &[0], &[12]).unwrap();
            for (i, &got) in all.iter().enumerate() {
                assert_eq!(got, (round * 100) as i16 + i as i16);
            }
        }
        ds.close().unwrap();
    });
}
