//! The dual-resource server engine must not change WHAT happens, only
//! WHEN: with an active fault plan (transient EIOs, short transfers,
//! latency stalls — every probabilistic kind), the pipelined collective
//! engine and the serial one must leave byte-identical files AND inject
//! the exact same fault sequence, because fault draws depend only on
//! `(seed, server_id, ops)` and both engines issue requests in the same
//! order. Crash faults are excluded by design: they trigger on *arrival
//! time*, which the two schedules legitimately disagree on.

use hpc_sim::{FaultCounters, FaultPlan, SimConfig};
use pnetcdf_mpi::run_world;
use pnetcdf_mpio::{MpiFile, OpenMode, Run};
use pnetcdf_pfs::{Pfs, StorageMode};

const NPROCS: usize = 4;
const PER_RANK: u64 = 2048;

fn hostile_plan() -> FaultPlan {
    FaultPlan {
        transient: 0.08,
        short: 0.08,
        stall: 0.10,
        ..FaultPlan::default()
    }
}

/// Each rank writes an interleaved, partially ragged slice (some runs
/// cross stripe boundaries, some leave holes) so both contiguous windows
/// and read-modify-write paths fire.
fn rank_runs(rank: usize) -> Vec<Run> {
    let base = rank as u64 * PER_RANK;
    vec![(base + 3, 700), (base + 900, 512), (base + 1500, 500)]
}

fn rank_data(runs: &[Run], rank: usize) -> Vec<u8> {
    let total: u64 = runs.iter().map(|r| r.1).sum();
    (0..total)
        .map(|i| (i as u8).wrapping_mul(37).wrapping_add(rank as u8 + 1))
        .collect()
}

/// Run one collective write under the hostile plan, returning the file
/// bytes and the injected-fault counters.
fn write_under_faults(pipeline: bool) -> (Vec<u8>, FaultCounters) {
    let mut cfg = SimConfig::test_small();
    cfg.faults = hostile_plan();
    cfg.profile.set_enabled(true);
    let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
    let pfs_in = pfs.clone();
    let info = pnetcdf_mpi::Info::new()
        .with("cb_buffer_size", "1024")
        .with(
            "pnc_cb_pipeline",
            if pipeline { "enable" } else { "disable" },
        );
    run_world(NPROCS, cfg.clone(), move |c| {
        let f = MpiFile::open(c, &pfs_in, "faulty", OpenMode::Create, &info).unwrap();
        let runs = rank_runs(c.rank());
        let data = rank_data(&runs, c.rank());
        f.write_runs_at_all(&runs, &data).unwrap();
    });
    let bytes = pfs.open("faulty").unwrap().to_bytes();
    (bytes, cfg.profile.fault_counters())
}

#[test]
fn engines_agree_on_bytes_and_fault_sequence_under_faults() {
    let (bytes_p, faults_p) = write_under_faults(true);
    let (bytes_s, faults_s) = write_under_faults(false);

    assert_eq!(bytes_p, bytes_s, "engines wrote different file bytes");
    // The plan must actually have fired, or the test proves nothing.
    assert!(
        faults_s.faults_injected > 0,
        "hostile plan never fired: {faults_s:?}"
    );
    // Identical issue order => identical per-op draws => identical
    // injected kinds, one for one.
    assert_eq!(faults_p.transient, faults_s.transient);
    assert_eq!(faults_p.short, faults_s.short);
    assert_eq!(faults_p.stalls, faults_s.stalls);
    assert_eq!(faults_p.faults_injected, faults_s.faults_injected);
    assert_eq!(faults_p.crashed, 0);
    assert_eq!(faults_s.crashed, 0);
    // Recovery work is driven by the same fault sequence.
    assert_eq!(faults_p.retries, faults_s.retries);
    assert_eq!(faults_p.short_completions, faults_s.short_completions);
}

/// The written content must also be exactly what the ranks sent — faults
/// recovered, not papered over.
#[test]
fn recovered_bytes_match_sent_bytes() {
    let (bytes, _) = write_under_faults(true);
    for rank in 0..NPROCS {
        let runs = rank_runs(rank);
        let data = rank_data(&runs, rank);
        let mut pos = 0usize;
        for &(off, len) in &runs {
            assert_eq!(
                &bytes[off as usize..(off + len) as usize],
                &data[pos..pos + len as usize],
                "rank {rank} run at {off} corrupted"
            );
            pos += len as usize;
        }
    }
}
