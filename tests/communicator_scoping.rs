//! Communicator scoping: datasets opened on sub-communicators, several
//! datasets open at once, and I/O groups that don't span the world — the
//! "participating processes in a communication group" semantics of §4.1.

use hpc_sim::SimConfig;
use pnetcdf::{Dataset, Info, NcType, Version};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

fn cfg() -> SimConfig {
    SimConfig::test_small()
}

#[test]
fn dataset_on_sub_communicator() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(6, cfg(), |c| {
        // Even ranks write one file, odd ranks another — concurrently.
        let color = (c.rank() % 2) as i64;
        let sub = c.split(color, 0).unwrap().unwrap();
        let name = if color == 0 { "even.nc" } else { "odd.nc" };
        let mut ds = Dataset::create(&sub, &pfs, name, Version::Cdf1, &Info::new()).unwrap();
        let x = ds.def_dim("x", sub.size() as u64 * 2).unwrap();
        let v = ds.def_var("a", NcType::Int, &[x]).unwrap();
        ds.enddef().unwrap();
        let s = sub.rank() as u64 * 2;
        ds.put_vara_all(
            v,
            &[s],
            &[2],
            &[
                color as i32 * 100 + s as i32,
                color as i32 * 100 + s as i32 + 1,
            ],
        )
        .unwrap();
        let all: Vec<i32> = ds.get_vara_all(v, &[0], &[sub.size() as u64 * 2]).unwrap();
        for (i, &got) in all.iter().enumerate() {
            assert_eq!(got, color as i32 * 100 + i as i32);
        }
        ds.close().unwrap();
    });
    assert!(pfs.exists("even.nc"));
    assert!(pfs.exists("odd.nc"));
}

#[test]
fn two_datasets_open_simultaneously() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(3, cfg(), |c| {
        let mut a = Dataset::create(c, &pfs, "a.nc", Version::Cdf1, &Info::new()).unwrap();
        let xa = a.def_dim("x", 6).unwrap();
        let va = a.def_var("v", NcType::Int, &[xa]).unwrap();
        a.enddef().unwrap();

        let mut b = Dataset::create(c, &pfs, "b.nc", Version::Cdf1, &Info::new()).unwrap();
        let xb = b.def_dim("x", 6).unwrap();
        let vb = b.def_var("v", NcType::Int, &[xb]).unwrap();
        b.enddef().unwrap();

        // Interleaved collective operations on both datasets.
        let s = c.rank() as u64 * 2;
        a.put_vara_all(va, &[s], &[2], &[1i32, 2]).unwrap();
        b.put_vara_all(vb, &[s], &[2], &[3i32, 4]).unwrap();
        let ra: Vec<i32> = a.get_vara_all(va, &[s], &[2]).unwrap();
        let rb: Vec<i32> = b.get_vara_all(vb, &[s], &[2]).unwrap();
        assert_eq!(ra, vec![1, 2]);
        assert_eq!(rb, vec![3, 4]);
        a.close().unwrap();
        b.close().unwrap();
    });
}

#[test]
fn duped_communicator_runs_dataset() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(2, cfg(), |c| {
        let dup = c.dup().unwrap();
        let mut ds = Dataset::create(&dup, &pfs, "d.nc", Version::Cdf1, &Info::new()).unwrap();
        let x = ds.def_dim("x", 4).unwrap();
        let v = ds.def_var("a", NcType::Float, &[x]).unwrap();
        ds.enddef().unwrap();
        ds.put_vara_all(v, &[(dup.rank() * 2) as u64], &[2], &[1.5f32, 2.5])
            .unwrap();
        // Operations on the parent communicator are unaffected.
        c.barrier().unwrap();
        ds.close().unwrap();
    });
}

#[test]
fn single_rank_subgroup_behaves_like_serial() {
    // A communicator of size 1 (the MPI_COMM_SELF pattern).
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(4, cfg(), |c| {
        let me = c.split(c.rank() as i64, 0).unwrap().unwrap();
        assert_eq!(me.size(), 1);
        let name = format!("self_{}.nc", c.rank());
        let mut ds = Dataset::create(&me, &pfs, &name, Version::Cdf1, &Info::new()).unwrap();
        let x = ds.def_dim("x", 3).unwrap();
        let v = ds.def_var("a", NcType::Int, &[x]).unwrap();
        ds.enddef().unwrap();
        ds.put_vara_all(v, &[0], &[3], &[7, 8, 9]).unwrap();
        ds.close().unwrap();
    });
    // Four independent files exist, one per rank.
    for r in 0..4 {
        let bytes = pfs.open(&format!("self_{r}.nc")).unwrap().to_bytes();
        let mut f =
            netcdf_serial::NcFile::open(netcdf_serial::MemStore::from_bytes(bytes)).unwrap();
        let v = f.var_id("a").unwrap();
        let vals: Vec<i32> = f.get_var(v).unwrap();
        assert_eq!(vals, vec![7, 8, 9]);
    }
}
