//! The nonblocking `iput_*`/`iget_*` + `wait_all` pipeline: roundtrips
//! across the seven partitioning strategies of the paper's Figure 6,
//! record variables, cross-request aggregation semantics, and — the key
//! contract — byte-for-byte identity with the blocking path.

use hpc_sim::SimConfig;
use pnetcdf::{Dataset, Datatype, Info, NcType, NcmpiError, Version};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

fn cfg() -> SimConfig {
    SimConfig::test_small()
}

/// Which axes a partition splits.
#[derive(Clone, Copy, Debug)]
struct Split {
    z: bool,
    y: bool,
    x: bool,
}

const PARTITIONS: [(&str, Split); 7] = [
    (
        "Z",
        Split {
            z: true,
            y: false,
            x: false,
        },
    ),
    (
        "Y",
        Split {
            z: false,
            y: true,
            x: false,
        },
    ),
    (
        "X",
        Split {
            z: false,
            y: false,
            x: true,
        },
    ),
    (
        "ZY",
        Split {
            z: true,
            y: true,
            x: false,
        },
    ),
    (
        "ZX",
        Split {
            z: true,
            y: false,
            x: true,
        },
    ),
    (
        "YX",
        Split {
            z: false,
            y: true,
            x: true,
        },
    ),
    (
        "ZYX",
        Split {
            z: true,
            y: true,
            x: true,
        },
    ),
];

/// Factor `nprocs` across the split axes, returning per-axis process counts.
fn factors(nprocs: usize, split: Split) -> (u64, u64, u64) {
    let naxes = [split.z, split.y, split.x].iter().filter(|&&b| b).count();
    let mut remaining = nprocs as u64;
    let mut out = [1u64, 1, 1];
    let mut axes: Vec<usize> = Vec::new();
    if split.z {
        axes.push(0);
    }
    if split.y {
        axes.push(1);
    }
    if split.x {
        axes.push(2);
    }
    for (i, &a) in axes.iter().enumerate() {
        let left = naxes - i;
        let mut f = (remaining as f64).powf(1.0 / left as f64).round() as u64;
        while f > 1 && remaining % f != 0 {
            f -= 1;
        }
        out[a] = f.max(1);
        remaining /= out[a];
    }
    out[*axes.last().unwrap()] *= remaining;
    (out[0], out[1], out[2])
}

/// This rank's (start, count) block of a (Z,Y,X) array.
fn block(
    rank: usize,
    (pz, py, px): (u64, u64, u64),
    (nz, ny, nx): (u64, u64, u64),
) -> ([u64; 3], [u64; 3]) {
    let r = rank as u64;
    let iz = r / (py * px);
    let iy = (r / px) % py;
    let ix = r % px;
    (
        [iz * (nz / pz), iy * (ny / py), ix * (nx / px)],
        [nz / pz, ny / py, nx / px],
    )
}

fn value(z: u64, y: u64, x: u64) -> f32 {
    (z * 10000 + y * 100 + x) as f32
}

fn block_values(start: [u64; 3], count: [u64; 3]) -> Vec<f32> {
    let mut vals = Vec::new();
    for dz in 0..count[0] {
        for dy in 0..count[1] {
            for dx in 0..count[2] {
                vals.push(value(start[0] + dz, start[1] + dy, start[2] + dx));
            }
        }
    }
    vals
}

/// Every Figure 6 partition, written with one queued iput per rank and one
/// `wait_all`, read back with queued igets — then the whole file verified
/// element-by-element through the serial reader.
#[test]
fn all_seven_partitions_nonblocking_roundtrip() {
    let (nz, ny, nx) = (4u64, 4, 8);
    let nprocs = 4usize;
    for (name, split) in PARTITIONS {
        let p = factors(nprocs, split);
        let pfs = Pfs::new(cfg(), StorageMode::Full);
        let pfs2 = pfs.clone();
        run_world(nprocs, cfg(), move |c| {
            let mut ds = Dataset::create(c, &pfs2, "p.nc", Version::Cdf1, &Info::new()).unwrap();
            let z = ds.def_dim("z", nz).unwrap();
            let y = ds.def_dim("y", ny).unwrap();
            let x = ds.def_dim("x", nx).unwrap();
            let v = ds.def_var("tt", NcType::Float, &[z, y, x]).unwrap();
            ds.enddef().unwrap();

            let (start, count) = block(c.rank(), p, (nz, ny, nx));
            let vals = block_values(start, count);
            let req = ds.iput_vara(v, &start, &count, &vals).unwrap();
            assert!(!req.is_null());
            assert_eq!(ds.num_pending(), 1);
            ds.wait_all().unwrap();
            assert_eq!(ds.num_pending(), 0);

            // Read back one z plane per rank through the nonblocking path.
            let zplane = c.rank() as u64 % nz;
            let rget = ds.iget_vara(v, &[zplane, 0, 0], &[1, ny, nx]).unwrap();
            ds.wait_all().unwrap();
            let plane: Vec<f32> = ds.take_result(rget).unwrap();
            for (i, &got) in plane.iter().enumerate() {
                let yy = i as u64 / nx;
                let xx = i as u64 % nx;
                assert_eq!(got, value(zplane, yy, xx), "partition {name}");
            }
            // A result can only be taken once.
            assert!(ds.take_result::<f32>(rget).is_err());
            ds.close().unwrap();
        });

        let bytes = pfs.open("p.nc").unwrap().to_bytes();
        let mut f =
            netcdf_serial::NcFile::open(netcdf_serial::MemStore::from_bytes(bytes)).unwrap();
        let v = f.var_id("tt").unwrap();
        let all: Vec<f32> = f.get_var(v).unwrap();
        let mut i = 0;
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    assert_eq!(all[i], value(z, y, x), "partition {name} at ({z},{y},{x})");
                    i += 1;
                }
            }
        }
    }
}

/// The nonblocking path must produce the exact same file bytes as the
/// blocking path, for every partition and for a multi-variable file.
#[test]
fn nonblocking_file_is_byte_identical_to_blocking() {
    let (nz, ny, nx) = (4u64, 4, 8);
    let nprocs = 4usize;
    for (name, split) in PARTITIONS {
        let p = factors(nprocs, split);
        let mut images: Vec<Vec<u8>> = Vec::new();
        for nonblocking in [false, true] {
            let pfs = Pfs::new(cfg(), StorageMode::Full);
            let pfs2 = pfs.clone();
            run_world(nprocs, cfg(), move |c| {
                let mut ds =
                    Dataset::create(c, &pfs2, "b.nc", Version::Cdf1, &Info::new()).unwrap();
                let z = ds.def_dim("z", nz).unwrap();
                let y = ds.def_dim("y", ny).unwrap();
                let x = ds.def_dim("x", nx).unwrap();
                let vf = ds.def_var("tt", NcType::Float, &[z, y, x]).unwrap();
                let vd = ds.def_var("uu", NcType::Double, &[z, y, x]).unwrap();
                let vi = ds.def_var("marker", NcType::Int, &[z]).unwrap();
                ds.enddef().unwrap();

                let (start, count) = block(c.rank(), p, (nz, ny, nx));
                let vals = block_values(start, count);
                let dvals: Vec<f64> = vals.iter().map(|&v| v as f64 + 0.5).collect();
                if nonblocking {
                    // Queue all three variables, flush with ONE wait_all.
                    ds.iput_vara(vf, &start, &count, &vals).unwrap();
                    ds.iput_vara(vd, &start, &count, &dvals).unwrap();
                    ds.iput_var1(vi, &[c.rank() as u64 % nz], 7 + c.rank() as i32)
                        .unwrap();
                    ds.wait_all().unwrap();
                } else {
                    ds.put_vara_all(vf, &start, &count, &vals).unwrap();
                    ds.put_vara_all(vd, &start, &count, &dvals).unwrap();
                    ds.put_var1_all(vi, &[c.rank() as u64 % nz], 7 + c.rank() as i32)
                        .unwrap();
                }
                ds.close().unwrap();
            });
            images.push(pfs.open("b.nc").unwrap().to_bytes());
        }
        assert_eq!(
            images[0], images[1],
            "partition {name}: nonblocking file differs from blocking file"
        );
    }
}

/// Record variables through the nonblocking path: queued record puts grow
/// `numrecs`, one `wait_all` reconciles it across ranks, and gaps fill as
/// zeros exactly as on the blocking path.
#[test]
fn record_variables_nonblocking_roundtrip() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(4, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "r.nc", Version::Cdf1, &Info::new()).unwrap();
        let t = ds.def_dim("time", 0).unwrap();
        let x = ds.def_dim("x", 4).unwrap();
        let a = ds.def_var("a", NcType::Double, &[t, x]).unwrap();
        let b = ds.def_var("b", NcType::Int, &[t, x]).unwrap();
        ds.enddef().unwrap();

        // Each rank queues two records of `a` and one of `b`; a single
        // wait_all writes all of them and reconciles numrecs.
        let r = c.rank() as u64;
        ds.iput_vara(a, &[r, 0], &[1, 4], &[r as f64; 4]).unwrap();
        ds.iput_vara(a, &[r + 4, 0], &[1, 4], &[(r + 4) as f64; 4])
            .unwrap();
        ds.iput_vara(b, &[r, 0], &[1, 4], &[r as i32; 4]).unwrap();
        assert_eq!(ds.num_pending(), 3);
        ds.wait_all().unwrap();
        assert_eq!(ds.numrecs(), 8);

        // Read everything back with queued gets drained by one wait_all.
        let ra = ds.iget_vara(a, &[0, 0], &[8, 4]).unwrap();
        let rb = ds.iget_vara(b, &[0, 0], &[4, 4]).unwrap();
        ds.wait_all().unwrap();
        let va: Vec<f64> = ds.take_result(ra).unwrap();
        for rec in 0..8u64 {
            assert_eq!(&va[rec as usize * 4..][..4], &[rec as f64; 4]);
        }
        let vb: Vec<i32> = ds.take_result(rb).unwrap();
        for rec in 0..4u64 {
            assert_eq!(&vb[rec as usize * 4..][..4], &[rec as i32; 4]);
        }
        ds.close().unwrap();
    });
}

/// Overlapping queued puts resolve in request order (last request wins),
/// and a get queued behind a put of the same region observes the new data.
#[test]
fn aggregation_orders_overlaps_and_write_before_read() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(1, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "o.nc", Version::Cdf1, &Info::new()).unwrap();
        let x = ds.def_dim("x", 8).unwrap();
        let v = ds.def_var("v", NcType::Int, &[x]).unwrap();
        ds.enddef().unwrap();

        // Base write, then an overlapping later write punching the middle,
        // then a get of the whole row — all in one batch.
        ds.iput_vara(v, &[0], &[8], &[1i32; 8]).unwrap();
        ds.iput_vara(v, &[2], &[4], &[9i32; 4]).unwrap();
        let rg = ds.iget_vara(v, &[0], &[8]).unwrap();
        ds.wait_all().unwrap();
        let got: Vec<i32> = ds.take_result(rg).unwrap();
        assert_eq!(got, vec![1, 1, 9, 9, 9, 9, 1, 1]);
        ds.close().unwrap();
    });
}

/// Strided, single-element, whole-variable and flexible variants queue and
/// complete; independent mode drains with `wait`.
#[test]
fn variant_coverage_and_independent_wait() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(2, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "v.nc", Version::Cdf1, &Info::new()).unwrap();
        let x = ds.def_dim("x", 8).unwrap();
        let v = ds.def_var("v", NcType::Int, &[x]).unwrap();
        let w = ds.def_var("w", NcType::Int, &[x]).unwrap();
        ds.enddef().unwrap();

        // Strided: rank r writes elements r, r+2, r+4, r+6.
        let r = c.rank() as u64;
        ds.iput_vars(v, &[r], &[4], &[2], &[10 + r as i32; 4])
            .unwrap();
        // Flexible put of the whole of `w` from rank 0; rank 1 queues nothing
        // for it — wait_all still completes collectively.
        if c.rank() == 0 {
            let vals: Vec<i32> = (0..8).collect();
            let bytes: Vec<u8> = vals.iter().flat_map(|i| i.to_ne_bytes()).collect();
            let mem = Datatype::contiguous(8, Datatype::int());
            ds.iput_vara_flexible(w, &[0], &[8], &bytes, 1, &mem)
                .unwrap();
        }
        ds.wait_all().unwrap();

        let rv = ds.iget_vars(v, &[r], &[4], &[2]).unwrap();
        let rw = ds
            .iget_vara_flexible(w, &[0], &[8], 1, &Datatype::contiguous(8, Datatype::int()))
            .unwrap();
        let r1 = ds.iget_var1(v, &[r]).unwrap();
        ds.wait_all().unwrap();
        assert_eq!(ds.take_result::<i32>(rv).unwrap(), vec![10 + r as i32; 4]);
        let mut wbuf = [0u8; 32];
        ds.take_result_flexible(rw, &mut wbuf, 1, &Datatype::contiguous(8, Datatype::int()))
            .unwrap();
        let wvals: Vec<i32> = wbuf
            .chunks(4)
            .map(|c| i32::from_ne_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(wvals, (0..8).collect::<Vec<i32>>());
        assert_eq!(ds.take_result::<i32>(r1).unwrap(), vec![10 + r as i32]);

        // Independent mode: queue a put and a whole-variable get, drain
        // with wait() — no collective round required.
        ds.begin_indep_data().unwrap();
        if c.rank() == 0 {
            ds.iput_var1(v, &[0], 99i32).unwrap();
            let rall = ds.iget_var(v).unwrap();
            ds.wait().unwrap();
            let all: Vec<i32> = ds.take_result(rall).unwrap();
            assert_eq!(all[0], 99);
        }
        ds.end_indep_data().unwrap();
        ds.close().unwrap();
    });
}

/// Mode transitions and header operations refuse while requests are
/// pending, and `close` flushes the queue instead of dropping it.
#[test]
fn pending_requests_guard_mode_changes_and_flush_on_close() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    let pfs2 = pfs.clone();
    run_world(2, cfg(), move |c| {
        let mut ds = Dataset::create(c, &pfs2, "g.nc", Version::Cdf1, &Info::new()).unwrap();
        let x = ds.def_dim("x", 4).unwrap();
        let v = ds.def_var("v", NcType::Int, &[x]).unwrap();
        ds.enddef().unwrap();

        let r = c.rank() as u64;
        ds.iput_vara(v, &[r * 2], &[2], &[r as i32 + 1; 2]).unwrap();
        // With a request pending, redef/sync/begin_indep_data all refuse.
        assert!(matches!(ds.redef(), Err(NcmpiError::InvalidArgument(_))));
        assert!(matches!(ds.sync(), Err(NcmpiError::InvalidArgument(_))));
        assert!(matches!(
            ds.begin_indep_data(),
            Err(NcmpiError::InvalidArgument(_))
        ));
        // Queueing in define mode is refused too (after draining).
        // close() flushes the still-pending put collectively.
        ds.close().unwrap();
    });
    let bytes = pfs.open("g.nc").unwrap().to_bytes();
    let mut f = netcdf_serial::NcFile::open(netcdf_serial::MemStore::from_bytes(bytes)).unwrap();
    let v = f.var_id("v").unwrap();
    let all: Vec<i32> = f.get_var(v).unwrap();
    assert_eq!(all, vec![1, 1, 2, 2], "close() must flush pending puts");
}

/// `iput_var` on a fixed variable whose length doesn't divide into whole
/// records reports `InvalidArgument` instead of silently truncating.
#[test]
fn whole_variable_length_mismatch_errors() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(1, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "w.nc", Version::Cdf1, &Info::new()).unwrap();
        let t = ds.def_dim("time", 0).unwrap();
        let x = ds.def_dim("x", 4).unwrap();
        let v = ds.def_var("v", NcType::Int, &[t, x]).unwrap();
        ds.enddef().unwrap();
        // 6 values is one and a half records.
        let err = ds.iput_var(v, &[0i32; 6]).unwrap_err();
        assert!(matches!(err, NcmpiError::InvalidArgument(_)));
        ds.close().unwrap();
    });
}
