//! End-to-end PnetCDF round-trips: collective and independent writes and
//! reads through the full stack (core → MPI-IO → two-phase → PFS), plus the
//! flexible API and all external types.

use hpc_sim::SimConfig;
use pnetcdf::{Dataset, Datatype, Info, NcType, Version};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

fn cfg() -> SimConfig {
    SimConfig::test_small()
}

#[test]
fn collective_write_then_collective_read() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    let n = 4;
    run_world(n, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "a.nc", Version::Cdf1, &Info::new()).unwrap();
        let z = ds.def_dim("z", n as u64).unwrap();
        let y = ds.def_dim("y", 8).unwrap();
        let v = ds.def_var("tt", NcType::Double, &[z, y]).unwrap();
        ds.enddef().unwrap();

        // Each rank owns one z plane.
        let mine: Vec<f64> = (0..8).map(|i| (c.rank() * 100 + i) as f64).collect();
        ds.put_vara_all(v, &[c.rank() as u64, 0], &[1, 8], &mine)
            .unwrap();

        // Read a transposed selection: every rank reads column `rank`.
        let col: Vec<f64> = ds
            .get_vara_all(v, &[0, c.rank() as u64], &[n as u64, 1])
            .unwrap();
        let expect: Vec<f64> = (0..n).map(|z| (z * 100 + c.rank()) as f64).collect();
        assert_eq!(col, expect);
        ds.close().unwrap();
    });
}

#[test]
fn independent_mode_roundtrip() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(3, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "ind.nc", Version::Cdf1, &Info::new()).unwrap();
        let x = ds.def_dim("x", 30).unwrap();
        let v = ds.def_var("a", NcType::Int, &[x]).unwrap();
        ds.enddef().unwrap();

        // Collective calls are rejected in independent mode and vice versa.
        assert!(ds.put_vara::<i32>(v, &[0], &[1], &[0]).is_err());
        ds.begin_indep_data().unwrap();
        assert!(ds.put_vara_all::<i32>(v, &[0], &[1], &[0]).is_err());

        let base = (c.rank() * 10) as u64;
        let vals: Vec<i32> = (0..10).map(|i| (base + i) as i32).collect();
        ds.put_vara(v, &[base], &[10], &vals).unwrap();
        let back: Vec<i32> = ds.get_vara(v, &[base], &[10]).unwrap();
        assert_eq!(back, vals);
        ds.end_indep_data().unwrap();

        // Now visible collectively.
        let all: Vec<i32> = ds.get_vara_all(v, &[0], &[30]).unwrap();
        assert_eq!(all, (0..30).collect::<Vec<i32>>());
        ds.close().unwrap();
    });
}

#[test]
fn all_external_types_roundtrip() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(2, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "types.nc", Version::Cdf1, &Info::new()).unwrap();
        let x = ds.def_dim("x", 4).unwrap();
        let vb = ds.def_var("vb", NcType::Byte, &[x]).unwrap();
        let vc = ds.def_var("vc", NcType::Char, &[x]).unwrap();
        let vs = ds.def_var("vs", NcType::Short, &[x]).unwrap();
        let vi = ds.def_var("vi", NcType::Int, &[x]).unwrap();
        let vf = ds.def_var("vf", NcType::Float, &[x]).unwrap();
        let vd = ds.def_var("vd", NcType::Double, &[x]).unwrap();
        ds.enddef().unwrap();

        if c.rank() == 0 {
            // Rank 0 writes the left half, rank 1 the right half.
        }
        let (s, n) = ((c.rank() * 2) as u64, 2u64);
        let off = c.rank() as i64 * 2;
        ds.put_vara_all(vb, &[s], &[n], &[(off) as i8, (off + 1) as i8])
            .unwrap();
        ds.put_vara_all(vc, &[s], &[n], &[b'a' + off as u8, b'b' + off as u8])
            .unwrap();
        ds.put_vara_all(vs, &[s], &[n], &[(-100 - off) as i16, (100 + off) as i16])
            .unwrap();
        ds.put_vara_all(vi, &[s], &[n], &[(1 << 20) + off as i32, -off as i32])
            .unwrap();
        ds.put_vara_all(vf, &[s], &[n], &[0.5 + off as f32, 1.5 + off as f32])
            .unwrap();
        ds.put_vara_all(vd, &[s], &[n], &[1e100 + off as f64, -off as f64])
            .unwrap();

        let b: Vec<i8> = ds.get_vara_all(vb, &[0], &[4]).unwrap();
        assert_eq!(b, vec![0, 1, 2, 3]);
        let ch: Vec<u8> = ds.get_vara_all(vc, &[0], &[4]).unwrap();
        assert_eq!(ch, vec![b'a', b'b', b'c', b'd']);
        let sh: Vec<i16> = ds.get_vara_all(vs, &[0], &[4]).unwrap();
        assert_eq!(sh, vec![-100, 100, -102, 102]);
        let ii: Vec<i32> = ds.get_vara_all(vi, &[0], &[4]).unwrap();
        assert_eq!(ii, vec![1 << 20, 0, (1 << 20) + 2, -2]);
        let ff: Vec<f32> = ds.get_vara_all(vf, &[0], &[4]).unwrap();
        assert_eq!(ff, vec![0.5, 1.5, 2.5, 3.5]);
        let dd: Vec<f64> = ds.get_vara_all(vd, &[0], &[4]).unwrap();
        assert_eq!(dd[1], 0.0);
        assert_eq!(dd[3], -2.0);
        ds.close().unwrap();
    });
}

#[test]
fn flexible_api_noncontiguous_memory() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(2, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "flex.nc", Version::Cdf1, &Info::new()).unwrap();
        let x = ds.def_dim("x", 8).unwrap();
        let v = ds.def_var("a", NcType::Int, &[x]).unwrap();
        ds.enddef().unwrap();

        // Memory: interleaved i32s — take every other element (stride 2).
        let native: Vec<i32> = (0..8).map(|i| i + 10 * c.rank() as i32).collect();
        let bytes: Vec<u8> = native.iter().flat_map(|v| v.to_ne_bytes()).collect();
        let memtype = Datatype::vector(4, 1, 2, Datatype::int());
        // Rank r writes elements [4r, 4r+4): values 10r+0,2,4,6.
        ds.put_vara_all_flexible(v, &[(c.rank() * 4) as u64], &[4], &bytes, 1, &memtype)
            .unwrap();

        let all: Vec<i32> = ds.get_vara_all(v, &[0], &[8]).unwrap();
        assert_eq!(all, vec![0, 2, 4, 6, 10, 12, 14, 16]);

        // Flexible read back into strided memory.
        let mut out = vec![0u8; 8 * 4];
        ds.get_vara_all_flexible(v, &[(c.rank() * 4) as u64], &[4], &mut out, 1, &memtype)
            .unwrap();
        let got: Vec<i32> = out
            .chunks_exact(4)
            .map(|ch| i32::from_ne_bytes(ch.try_into().unwrap()))
            .collect();
        // Strided positions hold the data; holes are zero.
        let base = 10 * c.rank() as i32;
        assert_eq!(got[0], base);
        assert_eq!(got[2], base + 2);
        assert_eq!(got[4], base + 4);
        assert_eq!(got[6], base + 6);
        assert_eq!(got[1], 0);
        ds.close().unwrap();
    });
}

#[test]
fn varm_transposed_memory() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(1, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "m.nc", Version::Cdf1, &Info::new()).unwrap();
        let z = ds.def_dim("z", 2).unwrap();
        let y = ds.def_dim("y", 3).unwrap();
        let v = ds.def_var("a", NcType::Float, &[z, y]).unwrap();
        ds.enddef().unwrap();

        // Memory is column-major (y varies slowest): imap = [1, 2].
        let mem: Vec<f32> = vec![0.0, 10.0, 1.0, 11.0, 2.0, 12.0];
        ds.put_varm_all(v, &[0, 0], &[2, 3], None, &[1, 2], &mem)
            .unwrap();
        let canonical: Vec<f32> = ds.get_vara_all(v, &[0, 0], &[2, 3]).unwrap();
        assert_eq!(canonical, vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);

        let back: Vec<f32> = ds.get_varm_all(v, &[0, 0], &[2, 3], None, &[1, 2]).unwrap();
        assert_eq!(back, mem);
        ds.close().unwrap();
    });
}

#[test]
fn attributes_and_inquiry() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(2, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "attr.nc", Version::Cdf1, &Info::new()).unwrap();
        let t = ds.def_dim("time", pnetcdf::NC_UNLIMITED).unwrap();
        let x = ds.def_dim("x", 5).unwrap();
        let v = ds.def_var("ts", NcType::Float, &[t, x]).unwrap();
        ds.put_gatt_text("title", "roundtrip test").unwrap();
        ds.put_vatt(v, "scale", pnetcdf::AttrValue::Double(vec![0.5]))
            .unwrap();
        ds.enddef().unwrap();

        let info = ds.inq();
        assert_eq!(info.ndims, 2);
        assert_eq!(info.nvars, 1);
        assert_eq!(info.ngatts, 1);
        assert_eq!(info.unlimdimid, Some(0));
        assert_eq!(ds.inq_varid("ts").unwrap(), v);
        assert_eq!(ds.inq_dimid("x").unwrap(), x);
        assert_eq!(ds.inq_dim(x).unwrap(), ("x".to_string(), 5));
        let vi = ds.inq_var(v).unwrap();
        assert_eq!(vi.name, "ts");
        assert_eq!(vi.nctype, NcType::Float);
        assert_eq!(vi.dimids, vec![t, x]);
        assert_eq!(vi.natts, 1);
        assert_eq!(
            ds.get_gatt("title").unwrap(),
            &pnetcdf::AttrValue::Char("roundtrip test".into())
        );
        assert_eq!(
            ds.get_vatt(v, "scale").unwrap(),
            &pnetcdf::AttrValue::Double(vec![0.5])
        );
        assert!(ds.get_gatt("missing").is_err());
        let _ = c;
        ds.close().unwrap();
    });
}

#[test]
fn reopen_written_dataset() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(2, cfg(), |c| {
        {
            let mut ds = Dataset::create(c, &pfs, "re.nc", Version::Cdf2, &Info::new()).unwrap();
            let x = ds.def_dim("x", 6).unwrap();
            let v = ds.def_var("data", NcType::Short, &[x]).unwrap();
            ds.enddef().unwrap();
            let s = (c.rank() * 3) as u64;
            let vals: Vec<i16> = (0..3).map(|i| (s + i) as i16 * 2).collect();
            ds.put_vara_all(v, &[s], &[3], &vals).unwrap();
            ds.close().unwrap();
        }
        {
            let mut ds = Dataset::open(c, &pfs, "re.nc", true, &Info::new()).unwrap();
            let v = ds.inq_varid("data").unwrap();
            let all: Vec<i16> = ds.get_vara_all(v, &[0], &[6]).unwrap();
            assert_eq!(all, vec![0, 2, 4, 6, 8, 10]);
            // Read-only blocks writes.
            assert!(ds.put_vara_all::<i16>(v, &[0], &[1], &[1]).is_err());
            ds.close().unwrap();
        }
    });
}

#[test]
fn redef_preserves_data_in_parallel() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(2, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "redef.nc", Version::Cdf1, &Info::new()).unwrap();
        let x = ds.def_dim("x", 8).unwrap();
        let v = ds.def_var("first", NcType::Int, &[x]).unwrap();
        ds.enddef().unwrap();
        let s = (c.rank() * 4) as u64;
        let vals: Vec<i32> = (0..4).map(|i| (s + i) as i32).collect();
        ds.put_vara_all(v, &[s], &[4], &vals).unwrap();

        ds.redef().unwrap();
        let y = ds
            .def_dim("extra_dimension_name_to_grow_header", 16)
            .unwrap();
        let w = ds.def_var("second_variable", NcType::Double, &[y]).unwrap();
        ds.enddef().unwrap();

        let all: Vec<i32> = ds.get_vara_all(v, &[0], &[8]).unwrap();
        assert_eq!(all, (0..8).collect::<Vec<i32>>());
        ds.put_vara_all(w, &[(c.rank() * 8) as u64], &[8], &[1.5f64; 8])
            .unwrap();
        ds.close().unwrap();
    });
}

#[test]
fn range_errors_surface() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(1, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "rng.nc", Version::Cdf1, &Info::new()).unwrap();
        let x = ds.def_dim("x", 2).unwrap();
        let v = ds.def_var("b", NcType::Byte, &[x]).unwrap();
        ds.enddef().unwrap();
        // 300 does not fit NC_BYTE.
        assert!(ds.put_vara_all::<i32>(v, &[0], &[2], &[1, 300]).is_err());
        // Out-of-bounds access.
        assert!(ds.put_vara_all::<i8>(v, &[1], &[2], &[1, 2]).is_err());
        ds.close().unwrap();
    });
}

#[test]
fn hints_flow_to_mpiio() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    let info = Info::new()
        .with("cb_buffer_size", "2048")
        .with("cb_nodes", "2");
    run_world(4, cfg(), move |c| {
        let mut ds = Dataset::create(c, &pfs, "h.nc", Version::Cdf1, &info).unwrap();
        let x = ds.def_dim("x", 4096).unwrap();
        let v = ds.def_var("a", NcType::Byte, &[x]).unwrap();
        ds.enddef().unwrap();
        let s = (c.rank() * 1024) as u64;
        ds.put_vara_all(v, &[s], &[1024], &vec![c.rank() as i8; 1024])
            .unwrap();
        let back: Vec<i8> = ds.get_vara_all(v, &[s], &[1024]).unwrap();
        assert_eq!(back, vec![c.rank() as i8; 1024]);
        ds.close().unwrap();
    });
}
