//! The shared service cluster end to end: many datasets on one
//! [`PfsCluster`] must behave — byte for byte — like each dataset on its
//! own private file system, while sharing servers, metadata shards and
//! failover state.

use hpc_sim::SimConfig;
use pnetcdf::{Dataset, Info, NcType, Version};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, PfsCluster, StorageMode, META_SHARDS};

/// Write `nrows x 16` doubles seeded by `tag` into `name` through `pfs`
/// with a world of `nprocs` ranks, using the communicator `comm`.
fn write_dataset(comm: &pnetcdf_mpi::Comm, pfs: &Pfs, name: &str, tag: u64, nrows: u64) {
    let mut ds = Dataset::create(comm, pfs, name, Version::Cdf1, &Info::new()).unwrap();
    let y = ds.def_dim("y", nrows * comm.size() as u64).unwrap();
    let x = ds.def_dim("x", 16).unwrap();
    let v = ds.def_var("v", NcType::Double, &[y, x]).unwrap();
    ds.enddef().unwrap();
    let start = [comm.rank() as u64 * nrows, 0];
    let count = [nrows, 16];
    let buf: Vec<f64> = (0..nrows * 16)
        .map(|i| (tag * 100_000 + comm.rank() as u64 * 1000 + i) as f64)
        .collect();
    ds.put_vara_all(v, &start, &count, &buf).unwrap();
    ds.close().unwrap();
}

/// Two datasets written *concurrently* on one shared cluster (a 4-rank
/// world split into two 2-rank apps) must be byte-identical to the same
/// datasets written back-to-back on fresh private clusters. Sharing
/// servers changes timing, never bytes.
#[test]
fn concurrent_datasets_match_fresh_clusters() {
    let cfg = SimConfig::test_small();

    // Shared cluster, two apps interleaving.
    let cluster = PfsCluster::new(cfg.clone(), StorageMode::Full);
    let a = cluster.mount();
    let b = cluster.mount();
    run_world(4, cfg.clone(), move |comm| {
        let color = (comm.rank() % 2) as i64;
        let sub = comm.split(color, comm.rank() as i64).unwrap().unwrap();
        let (pfs, name, tag) = if color == 0 {
            (&a, "app_a.nc", 1)
        } else {
            (&b, "app_b.nc", 2)
        };
        write_dataset(&sub, pfs, name, tag, 8);
    });
    let shared_a = cluster.mount().open("app_a.nc").unwrap().to_bytes();
    let shared_b = cluster.mount().open("app_b.nc").unwrap().to_bytes();

    // Same apps, each alone on a fresh cluster.
    for (name, tag, shared) in [("app_a.nc", 1u64, &shared_a), ("app_b.nc", 2u64, &shared_b)] {
        let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
        let pfs2 = pfs.clone();
        run_world(2, cfg.clone(), move |comm| {
            write_dataset(comm, &pfs2, name, tag, 8);
        });
        let alone = pfs.open(name).unwrap().to_bytes();
        assert_eq!(
            &alone, shared,
            "{name}: cluster sharing changed the file bytes"
        );
    }
}

/// Metadata-shard id allocation and counters are a pure function of the
/// create/open sequence — two clusters replaying the same namespace
/// traffic report identical shard stats, and every id is unique even
/// under heavy cross-shard interleaving.
#[test]
fn metadata_shards_deterministic() {
    let build = || {
        let cluster = PfsCluster::new(SimConfig::test_small(), StorageMode::Full);
        let fs = cluster.mount();
        for i in 0..3 * META_SHARDS {
            fs.create(&format!("f{i}.nc"));
        }
        for i in 0..3 * META_SHARDS {
            assert!(fs.open(&format!("f{i}.nc")).is_some());
        }
        assert!(fs.delete("f0.nc"));
        cluster
    };
    let c1 = build();
    let c2 = build();
    assert_eq!(c1.meta().len(), 3 * META_SHARDS - 1);
    assert_eq!(c1.meta().stats(), c2.meta().stats());
    assert_eq!(c1.meta().list(), c2.meta().list());
    let total_creates: u64 = c1.meta().stats().iter().map(|s| s.creates).sum();
    assert_eq!(total_creates, 3 * META_SHARDS as u64);
}

/// Marking a server down through one file's view opens the same degraded
/// epoch for every other file open on the cluster: failover is a cluster
/// property, not a file property.
#[test]
fn failover_epoch_shared_across_open_files() {
    let cluster = PfsCluster::new(SimConfig::test_small(), StorageMode::Full);
    cluster.set_parity(true);
    let a = cluster.mount();
    let b = cluster.mount();
    a.create("a.nc");
    b.create("b.nc");
    assert_eq!(a.failover_epoch(), 0);
    assert_eq!(b.failover_epoch(), 0);

    assert!(a.can_failover(1));
    assert!(a.mark_server_down(1), "first mark is the transition");
    assert!(!a.mark_server_down(1), "idempotent on the same view");

    // The other file's view sees the same epoch and the same down server.
    assert_eq!(b.down_server(), Some(1));
    assert_eq!(b.failover_epoch(), 1);
    assert_eq!(a.failover_epoch(), 1);
    // Single-parity: the *other* view cannot fail over a second server.
    assert!(!b.can_failover(2));
}
