//! Multi-rank assertions on the `pnetcdf-trace` observability layer: the
//! two-phase engine counts exactly one collective write with the expected
//! aggregator disk requests, both access modes report identical
//! `put_size` for byte-identical output, and `close` rolls the per-rank
//! dataset counters up into the shared trace profile.

use hpc_sim::SimConfig;
use pnetcdf::{Dataset, Info, NcType, Version};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

const NPROCS: usize = 4;
/// One stripe of `SimConfig::test_small` per rank, in f32 elements.
const PER_RANK: u64 = 256;

/// Align the data section to the stripe size so the collective write's
/// file domains land exactly on stripe (= server) boundaries, making the
/// expected request counts derivable by hand.
fn aligned_info() -> Info {
    Info::new().with("nc_header_align_size", "1024")
}

#[test]
fn collective_write_counts_one_collective_and_expected_aggregator_io() {
    let cfg = SimConfig::test_small();
    cfg.profile.set_enabled(true);
    let pfs = Pfs::new(cfg.clone(), StorageMode::CostOnly);
    run_world(NPROCS, cfg.clone(), move |comm| {
        let mut ds =
            Dataset::create(comm, &pfs, "prof.nc", Version::Cdf1, &aligned_info()).unwrap();
        let d = ds.def_dim("x", NPROCS as u64 * PER_RANK).unwrap();
        let v = ds.def_var("v", NcType::Float, &[d]).unwrap();
        ds.enddef().unwrap();
        assert_eq!(
            ds.layout().data_start % 1024,
            0,
            "test premise: data section starts on a stripe boundary"
        );
        // Drop the creation/enddef traffic so the counters below describe
        // the one collective data write alone. The barriers put every rank
        // at the same point; the reset happens before any rank can record
        // post-barrier work because the second rendezvous waits for rank 0.
        comm.barrier().unwrap();
        if comm.rank() == 0 {
            comm.config().profile.reset();
        }
        comm.barrier().unwrap();

        let r = comm.rank() as u64;
        let vals = vec![r as f32; PER_RANK as usize];
        ds.put_vara_all(v, &[r * PER_RANK], &[PER_RANK], &vals)
            .unwrap();
        assert_eq!(ds.inq_put_size(), PER_RANK * 4);
    });

    let snap = cfg.profile.snapshot();
    // Exactly one collective write round.
    assert_eq!(snap.twophase.collective_writes, 1);
    assert_eq!(snap.twophase.collective_reads, 0);
    // 4 KiB fits in one collective buffer, so the dynamic default picks a
    // single aggregator (recorded in the trace), which owns one fully
    // covered window — no read-modify-write.
    assert_eq!(snap.twophase.cb_nodes, 1);
    assert_eq!(snap.twophase.file_domains, 1);
    assert_eq!(snap.twophase.windows, 1);
    assert_eq!(snap.twophase.rmw_windows, 0);
    // The window is one vectored request coalesced per server: each of the
    // 4 servers services exactly one write request of one stripe.
    assert_eq!(snap.servers.len(), 4);
    for s in &snap.servers {
        assert_eq!(s.requests, 1);
        assert_eq!(s.bytes_written, 1024);
        assert_eq!(s.bytes_read, 0);
    }
}

/// The same FLASH-style workload issued through blocking `put_vara_all`
/// and through `iput_vara` + `wait_all` must produce the same file bytes
/// AND report the same per-rank `put_size`.
#[test]
fn blocking_and_nonblocking_put_size_agree_on_identical_output() {
    let mut images = Vec::new();
    let mut put_sizes = Vec::new();
    for nonblocking in [false, true] {
        let cfg = SimConfig::test_small();
        let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
        let pfs2 = pfs.clone();
        let run = run_world(NPROCS, cfg, move |comm| {
            let mut ds =
                Dataset::create(comm, &pfs2, "id.nc", Version::Cdf1, &aligned_info()).unwrap();
            let d = ds.def_dim("x", NPROCS as u64 * PER_RANK).unwrap();
            let a = ds.def_var("a", NcType::Float, &[d]).unwrap();
            let b = ds.def_var("b", NcType::Int, &[d]).unwrap();
            ds.enddef().unwrap();
            let r = comm.rank() as u64;
            let start = [r * PER_RANK];
            let count = [PER_RANK];
            let fa = vec![r as f32 + 0.5; PER_RANK as usize];
            let ib = vec![r as i32 - 7; PER_RANK as usize];
            if nonblocking {
                ds.iput_vara(a, &start, &count, &fa).unwrap();
                ds.iput_vara(b, &start, &count, &ib).unwrap();
                ds.wait_all().unwrap();
            } else {
                ds.put_vara_all(a, &start, &count, &fa).unwrap();
                ds.put_vara_all(b, &start, &count, &ib).unwrap();
            }
            let put_size = ds.inq_put_size();
            // Per-variable attribution: both variables carry 4-byte types.
            assert_eq!(ds.profile().var(a).total().put_bytes, PER_RANK * 4);
            assert_eq!(ds.profile().var(b).total().put_bytes, PER_RANK * 4);
            ds.close().unwrap();
            put_size
        });
        images.push(pfs.open("id.nc").unwrap().to_bytes());
        put_sizes.push(run.results);
    }
    assert_eq!(
        images[0], images[1],
        "blocking and nonblocking paths must write identical bytes"
    );
    assert_eq!(
        put_sizes[0], put_sizes[1],
        "identical output must report identical put_size"
    );
    assert_eq!(put_sizes[0], vec![2 * PER_RANK * 4; NPROCS]);
}

/// The pipelined round engine must keep the exact-attribution invariant:
/// with profiling on from the start, every rank's per-phase sums add up to
/// the whole makespan (coverage == 1.0), even though exchange and disk
/// phases overlap in the timeline.
#[test]
fn pipelined_rounds_keep_exact_phase_attribution() {
    let cfg = SimConfig::test_small();
    cfg.profile.set_enabled(true);
    let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
    // A 512-byte collective buffer halves each 1 KiB file domain: two
    // rounds per aggregator, so the pipeline genuinely overlaps.
    let info = aligned_info().with("cb_buffer_size", "512");
    let run = run_world(NPROCS, cfg.clone(), move |comm| {
        let mut ds = Dataset::create(comm, &pfs, "pipe.nc", Version::Cdf1, &info).unwrap();
        let d = ds.def_dim("x", NPROCS as u64 * PER_RANK).unwrap();
        let v = ds.def_var("v", NcType::Float, &[d]).unwrap();
        ds.enddef().unwrap();
        let r = comm.rank() as u64;
        let vals = vec![r as f32; PER_RANK as usize];
        ds.put_vara_all(v, &[r * PER_RANK], &[PER_RANK], &vals)
            .unwrap();
        let back: Vec<f32> = ds.get_vara_all(v, &[r * PER_RANK], &[PER_RANK]).unwrap();
        assert_eq!(back, vals);
        ds.close().unwrap();
    });

    let snap = cfg.profile.snapshot();
    assert!(
        snap.twophase.pipelined_rounds >= 2,
        "workload must span multiple rounds: {:?}",
        snap.twophase
    );
    // Every simulated nanosecond of every rank is attributed to a phase.
    let makespan = run.makespan.as_nanos();
    for rank in 0..NPROCS {
        assert_eq!(
            snap.rank_total(rank),
            makespan,
            "rank {rank} phase sums must equal the makespan exactly \
             (coverage == 1.0); per-phase: {:?}",
            snap.phase_nanos[rank]
        );
    }
}

/// Event tracing must be a pure observer: running the same workload with
/// `pnc_trace_events` enabled and unset (the seed behavior) produces
/// identical makespans, identical per-rank phase sums, and identical
/// server byte counts — span recording never touches a virtual clock, and
/// with the hint unset the recorder stays completely empty.
#[test]
fn tracing_does_not_perturb_phase_sums_or_byte_counts() {
    let mut makespans = Vec::new();
    let mut snaps = Vec::new();
    for traced in [false, true] {
        let cfg = SimConfig::test_small();
        cfg.profile.set_enabled(true);
        let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
        // Pipelined rounds, so the traced run exercises every span site.
        let mut info = aligned_info()
            .with("cb_buffer_size", "512")
            .with("pnc_cb_pipeline", "enable");
        if traced {
            info = info.with("pnc_trace_events", "enable");
        }
        let run = run_world(NPROCS, cfg.clone(), move |comm| {
            let mut ds = Dataset::create(comm, &pfs, "obs.nc", Version::Cdf1, &info).unwrap();
            let d = ds.def_dim("x", NPROCS as u64 * PER_RANK).unwrap();
            let v = ds.def_var("v", NcType::Float, &[d]).unwrap();
            ds.enddef().unwrap();
            let r = comm.rank() as u64;
            let vals = vec![r as f32; PER_RANK as usize];
            ds.iput_vara(v, &[r * PER_RANK], &[PER_RANK], &vals)
                .unwrap();
            ds.wait_all().unwrap();
            let req = ds.iget_vara(v, &[r * PER_RANK], &[PER_RANK]).unwrap();
            ds.wait_all().unwrap();
            let back: Vec<f32> = ds.take_result(req).unwrap();
            assert_eq!(back, vals);
            ds.close().unwrap();
        });
        let spans = cfg.events.snapshot().spans.len();
        if traced {
            assert!(spans > 0, "traced run must record spans");
        } else {
            assert_eq!(spans, 0, "seed behavior: hint unset records nothing");
        }
        makespans.push(run.makespan);
        snaps.push(cfg.profile.snapshot());
    }
    assert_eq!(
        makespans[0], makespans[1],
        "tracing must not move any virtual clock"
    );
    for rank in 0..NPROCS {
        assert_eq!(
            snaps[0].phase_nanos[rank], snaps[1].phase_nanos[rank],
            "rank {rank} phase sums must be identical with tracing on/off"
        );
    }
    assert_eq!(snaps[0].servers.len(), snaps[1].servers.len());
    for (a, b) in snaps[0].servers.iter().zip(snaps[1].servers.iter()) {
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.bytes_written, b.bytes_written);
        assert_eq!(a.bytes_read, b.bytes_read);
    }
}

/// `close` reduces the per-rank dataset counters across the communicator
/// and rank 0 attaches the global roll-up to the shared trace profile.
#[test]
fn close_rolls_dataset_counters_into_trace() {
    let cfg = SimConfig::test_small();
    cfg.profile.set_enabled(true);
    let pfs = Pfs::new(cfg.clone(), StorageMode::CostOnly);
    run_world(NPROCS, cfg.clone(), move |comm| {
        let mut ds =
            Dataset::create(comm, &pfs, "roll.nc", Version::Cdf1, &aligned_info()).unwrap();
        let d = ds.def_dim("x", NPROCS as u64 * PER_RANK).unwrap();
        let v = ds.def_var("v", NcType::Float, &[d]).unwrap();
        ds.enddef().unwrap();
        let r = comm.rank() as u64;
        let vals = vec![1.0f32; PER_RANK as usize];
        ds.put_vara_all(v, &[r * PER_RANK], &[PER_RANK], &vals)
            .unwrap();
        let back: Vec<f32> = ds.get_vara_all(v, &[r * PER_RANK], &[PER_RANK]).unwrap();
        assert_eq!(back.len(), PER_RANK as usize);
        ds.close().unwrap();
    });

    let snap = cfg.profile.snapshot();
    let (_, rollup) = snap
        .extras
        .iter()
        .find(|(name, _)| name == "dataset:roll.nc")
        .expect("close attaches the dataset roll-up");
    let get = |key: &str| rollup.get(key).and_then(|j| j.as_f64()).map(|f| f as u64);
    assert_eq!(get("put_bytes"), Some(NPROCS as u64 * PER_RANK * 4));
    assert_eq!(get("get_bytes"), Some(NPROCS as u64 * PER_RANK * 4));
}
