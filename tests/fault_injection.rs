//! Fault injection end to end: the retry/backoff layer must hide
//! transient, short and stall faults without changing a single file byte,
//! and unrecoverable faults (permanent server crash, per-rank validation
//! failures) must surface as the *same* error on every rank of a
//! collective — no hangs, no divergent returns.

use std::sync::{Arc, Mutex};

use hpc_sim::{FaultPlan, SimConfig, Time};
use pnetcdf::{Dataset, Info, NcType, NcmpiError, Version};
use pnetcdf_mpi::run_world;
use pnetcdf_mpio::MpioError;
use pnetcdf_pfs::{Pfs, StorageMode};

/// `test_small` with profiling on and the given fault spec applied.
fn faulty_cfg(spec: &str) -> SimConfig {
    let cfg = SimConfig::test_small()
        .builder()
        .faults(FaultPlan::from_spec(spec).unwrap())
        .build();
    cfg.profile.set_enabled(true);
    cfg
}

fn value(z: u64, y: u64, x: u64) -> f32 {
    (z * 10000 + y * 100 + x) as f32
}

/// Write a 3D variable from 4 ranks (one z-plane each), read it back with
/// collective gets, close, and return the final file bytes.
fn run_workload(cfg: SimConfig) -> Vec<u8> {
    let (nz, ny, nx) = (4u64, 4, 8);
    let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
    let pfs2 = pfs.clone();
    run_world(4, cfg, move |c| {
        let mut ds = Dataset::create(c, &pfs2, "f.nc", Version::Cdf1, &Info::new()).unwrap();
        let z = ds.def_dim("z", nz).unwrap();
        let y = ds.def_dim("y", ny).unwrap();
        let x = ds.def_dim("x", nx).unwrap();
        let v = ds.def_var("tt", NcType::Float, &[z, y, x]).unwrap();
        ds.enddef().unwrap();

        let zp = c.rank() as u64;
        let vals: Vec<f32> = (0..ny * nx).map(|i| value(zp, i / nx, i % nx)).collect();
        ds.put_vara_all(v, &[zp, 0, 0], &[1, ny, nx], &vals)
            .unwrap();

        // Read a different plane back through the faulty read path.
        let rp = (zp + 1) % nz;
        let got: Vec<f32> = ds.get_vara_all(v, &[rp, 0, 0], &[1, ny, nx]).unwrap();
        for (i, &g) in got.iter().enumerate() {
            assert_eq!(g, value(rp, i as u64 / nx, i as u64 % nx));
        }
        ds.close().unwrap();
    });
    pfs.open("f.nc").unwrap().to_bytes()
}

/// Transient + short faults on every server: the recovery layer retries
/// and resumes until the workload completes, and the resulting file is
/// byte-identical to a fault-free run.
#[test]
fn recovered_faults_leave_file_byte_identical() {
    let clean = run_workload(SimConfig::test_small());

    let cfg = faulty_cfg("transient=0.15,short=0.15");
    let profile = cfg.profile.clone();
    let faulty = run_workload(cfg);

    assert_eq!(clean, faulty, "recovered faults must not change file bytes");
    let f = profile.fault_counters();
    assert!(f.faults_injected > 0, "plan injected nothing: {f:?}");
    assert!(f.retries > 0, "recovery never retried: {f:?}");
    assert!(f.backoff_nanos > 0, "retries must back off: {f:?}");
    assert_eq!(f.exhausted, 0, "workload must recover, not exhaust: {f:?}");
}

/// Short-I/O heavy plan: the completion loop must resume at the partial
/// offset (counted as `short_completions`) rather than restarting blindly.
#[test]
fn short_io_resumes_at_partial_offset() {
    let cfg = faulty_cfg("short=0.6");
    let profile = cfg.profile.clone();
    let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
    run_world(1, cfg, move |c| {
        let mut ds = Dataset::create(c, &pfs, "s.nc", Version::Cdf1, &Info::new()).unwrap();
        let x = ds.def_dim("x", 4096).unwrap();
        let v = ds.def_var("v", NcType::Float, &[x]).unwrap();
        ds.enddef().unwrap();
        let vals: Vec<f32> = (0..4096).map(|i| i as f32).collect();
        ds.put_vara_all(v, &[0], &[4096], &vals).unwrap();
        let back: Vec<f32> = ds.get_vara_all(v, &[0], &[4096]).unwrap();
        assert_eq!(back, vals);
        ds.close().unwrap();
    });
    let f = profile.fault_counters();
    assert!(f.short > 0, "no short faults injected: {f:?}");
    assert!(
        f.short_completions > 0,
        "short faults must resume at the partial offset: {f:?}"
    );
}

/// Stalls only delay (charged to virtual time); they are not errors and
/// need no retries.
#[test]
fn stalls_delay_but_do_not_fail() {
    let cfg = faulty_cfg("stall=0.4,stall_us=200");
    let profile = cfg.profile.clone();
    let clean = run_workload(SimConfig::test_small());
    let stalled = run_workload(cfg);
    assert_eq!(clean, stalled);
    let f = profile.fault_counters();
    assert!(f.stalls > 0, "no stalls injected: {f:?}");
    assert_eq!(f.retries, 0, "stalls are not errors: {f:?}");
}

/// One rank passes an out-of-bounds region to a collective put: every rank
/// — including the three whose arguments were fine — must return the same
/// error, and nobody may hang waiting for the failed rank.
#[test]
fn out_of_bounds_on_one_rank_yields_identical_error_everywhere() {
    let cfg = faulty_cfg(""); // inert plan; profiling on for agreed_errors
    let profile = cfg.profile.clone();
    let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
    let errors: Arc<Mutex<Vec<(usize, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let errs2 = errors.clone();
    run_world(4, cfg, move |c| {
        let mut ds = Dataset::create(c, &pfs, "oob.nc", Version::Cdf1, &Info::new()).unwrap();
        let x = ds.def_dim("x", 16).unwrap();
        let v = ds.def_var("v", NcType::Int, &[x]).unwrap();
        ds.enddef().unwrap();

        // Rank 2 reaches past the end of the dimension.
        let start = if c.rank() == 2 {
            100
        } else {
            c.rank() as u64 * 4
        };
        let err = ds.put_vara_all(v, &[start], &[4], &[7i32; 4]).unwrap_err();
        errs2.lock().unwrap().push((c.rank(), format!("{err:?}")));

        // The dataset is still usable: a well-formed collective completes.
        ds.put_vara_all(v, &[c.rank() as u64 * 4], &[4], &[1i32; 4])
            .unwrap();
        ds.close().unwrap();
    });
    let errs = errors.lock().unwrap();
    assert_eq!(errs.len(), 4, "every rank must return from the collective");
    for (rank, msg) in errs.iter() {
        assert_eq!(
            msg, &errs[0].1,
            "rank {rank} returned a different error than rank {}",
            errs[0].0
        );
    }
    assert!(
        profile.fault_counters().agreed_errors > 0,
        "the agreement must be counted"
    );
}

/// A permanently crashed server exhausts the retry budget in bounded
/// virtual time, and the resulting `Exhausted` error is identical on every
/// rank of the collective.
#[test]
fn permanent_crash_exhausts_identically_on_all_ranks() {
    let cfg = faulty_cfg("crash=server:0@t>1e9");
    let profile = cfg.profile.clone();
    let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
    let errors: Arc<Mutex<Vec<(usize, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let errs2 = errors.clone();
    run_world(4, cfg, move |c| {
        let mut ds = Dataset::create(c, &pfs, "c.nc", Version::Cdf1, &Info::new()).unwrap();
        let x = ds.def_dim("x", 4096).unwrap();
        let v = ds.def_var("v", NcType::Float, &[x]).unwrap();
        ds.enddef().unwrap();
        // The outage starts at t=1s; everything above happened well before
        // it. Jump every rank past the crash point, then write.
        c.advance(Time::from_secs_f64(2.0));
        let before = c.now();
        let err = ds
            .put_vara_all(v, &[c.rank() as u64 * 1024], &[1024], &[1.5f32; 1024])
            .unwrap_err();
        assert!(
            matches!(err, NcmpiError::Mpio(MpioError::Exhausted { .. })),
            "expected retry exhaustion, got {err:?}"
        );
        // Bounded: the budget is 12 attempts with backoff capped at 50 ms,
        // so giving up must take well under a minute of virtual time.
        let waited = c.now().saturating_sub(before);
        assert!(
            waited < Time::from_secs_f64(60.0),
            "gave up only after {waited:?} of virtual time"
        );
        errs2.lock().unwrap().push((c.rank(), format!("{err:?}")));
        // Storage is gone: drop the dataset instead of close() (which
        // would need the dead server to flush the header).
    });
    let errs = errors.lock().unwrap();
    assert_eq!(errs.len(), 4);
    for (rank, msg) in errs.iter() {
        assert_eq!(msg, &errs[0].1, "rank {rank} disagreed");
    }
    let f = profile.fault_counters();
    assert!(f.crashed > 0, "crash window never hit: {f:?}");
    assert!(f.exhausted > 0, "budget never exhausted: {f:?}");
    assert!(f.agreed_errors > 0, "exhaustion must be agreed: {f:?}");
}

/// `wait_all` on a failing flush: the pending queue is drained, every
/// queued get completes with a per-request error, and a later `wait_all`
/// starts from a clean slate instead of seeing stale requests.
#[test]
fn failed_wait_all_drains_queue_with_per_request_errors() {
    let cfg = faulty_cfg("crash=server:0@t>1e9");
    let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
    run_world(2, cfg, move |c| {
        let mut ds = Dataset::create(c, &pfs, "q.nc", Version::Cdf1, &Info::new()).unwrap();
        let x = ds.def_dim("x", 2048).unwrap();
        let v = ds.def_var("v", NcType::Int, &[x]).unwrap();
        ds.enddef().unwrap();
        // Seed data while the storage is healthy.
        ds.put_vara_all(v, &[c.rank() as u64 * 1024], &[1024], &[3i32; 1024])
            .unwrap();

        c.advance(Time::from_secs_f64(2.0));
        ds.iput_vara(v, &[c.rank() as u64 * 1024], &[1024], &[9i32; 1024])
            .unwrap();
        let rg = ds.iget_vara(v, &[0], &[8]).unwrap();
        assert_eq!(ds.num_pending(), 2);

        let err = ds.wait_all().unwrap_err();
        assert!(
            matches!(err, NcmpiError::Mpio(MpioError::Exhausted { .. })),
            "unexpected flush error {err:?}"
        );
        // The queue must be fully drained, with the get completed by a
        // per-request error rather than left dangling.
        assert_eq!(ds.num_pending(), 0);
        let got: Result<Vec<i32>, _> = ds.take_result(rg);
        assert!(
            matches!(got, Err(NcmpiError::Mpio(MpioError::Exhausted { .. }))),
            "queued get must carry the flush error, got {got:?}"
        );
        // A later wait_all sees no stale requests.
        ds.wait_all().unwrap();
    });
}
