//! The strongest correctness property in the repository: a dataset written
//! by PnetCDF with P ranks is **byte-for-byte identical** to the same
//! dataset written by the serial netCDF library — the paper's central
//! interoperability claim ("our parallel netCDF design retains the original
//! netCDF file format"). This pins the format codec, the layout math, the
//! view construction, and the two-phase write path simultaneously.

use hpc_sim::SimConfig;
use netcdf_serial::{MemStore, NcFile};
use pnetcdf::{Dataset, Info, NcType, Version};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

fn cfg() -> SimConfig {
    SimConfig::test_small()
}

/// The shared dataset definition: a 3-D fixed variable, a record variable,
/// and some attributes.
fn define_serial(f: &mut NcFile) -> (usize, usize) {
    let t = f.def_dim("time", 0).unwrap();
    let z = f.def_dim("z", 4).unwrap();
    let y = f.def_dim("y", 6).unwrap();
    let x = f.def_dim("x", 8).unwrap();
    f.put_gatt("title", pnetcdf::AttrValue::Char("identity".into()))
        .unwrap();
    let tt = f.def_var("tt", NcType::Float, &[z, y, x]).unwrap();
    f.put_vatt(tt, "units", pnetcdf::AttrValue::Char("K".into()))
        .unwrap();
    let ts = f.def_var("ts", NcType::Double, &[t, y, x]).unwrap();
    f.enddef().unwrap();
    (tt, ts)
}

fn define_parallel(ds: &mut Dataset) -> (usize, usize) {
    let t = ds.def_dim("time", 0).unwrap();
    let z = ds.def_dim("z", 4).unwrap();
    let y = ds.def_dim("y", 6).unwrap();
    let x = ds.def_dim("x", 8).unwrap();
    ds.put_gatt_text("title", "identity").unwrap();
    let tt = ds.def_var("tt", NcType::Float, &[z, y, x]).unwrap();
    ds.put_vatt_text(tt, "units", "K").unwrap();
    let ts = ds.def_var("ts", NcType::Double, &[t, y, x]).unwrap();
    ds.enddef().unwrap();
    (tt, ts)
}

fn tt_value(z: u64, y: u64, x: u64) -> f32 {
    (z * 10000 + y * 100 + x) as f32 * 0.25
}

fn ts_value(r: u64, y: u64, x: u64) -> f64 {
    (r * 1_000_000 + y * 1000 + x) as f64 * 0.5
}

fn serial_bytes() -> Vec<u8> {
    let mut f = NcFile::create(MemStore::new(), Version::Cdf1);
    let (tt, ts) = define_serial(&mut f);
    // Whole 3-D variable.
    let mut vals = Vec::new();
    for z in 0..4 {
        for y in 0..6 {
            for x in 0..8 {
                vals.push(tt_value(z, y, x));
            }
        }
    }
    f.put_vara(tt, &[0, 0, 0], &[4, 6, 8], &vals).unwrap();
    // Three records.
    for r in 0..3u64 {
        let mut rec = Vec::new();
        for y in 0..6 {
            for x in 0..8 {
                rec.push(ts_value(r, y, x));
            }
        }
        f.put_vara(ts, &[r, 0, 0], &[1, 6, 8], &rec).unwrap();
    }
    let store = f.close().unwrap();
    // Recover the bytes through the trait object by reading them back.
    let mut store = store;
    let size = store.size();
    let mut bytes = vec![0u8; size as usize];
    store.read_at(0, &mut bytes);
    bytes
}

fn parallel_bytes(nprocs: usize) -> Vec<u8> {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    let pfs2 = pfs.clone();
    run_world(nprocs, cfg(), move |c| {
        let mut ds = Dataset::create(c, &pfs2, "id.nc", Version::Cdf1, &Info::new()).unwrap();
        let (tt, ts) = define_parallel(&mut ds);

        // Partition the fixed variable along z across ranks.
        let per = 4u64.div_ceil(nprocs as u64);
        let z0 = (c.rank() as u64 * per).min(4);
        let z1 = ((c.rank() as u64 + 1) * per).min(4);
        let mut vals = Vec::new();
        for z in z0..z1 {
            for y in 0..6 {
                for x in 0..8 {
                    vals.push(tt_value(z, y, x));
                }
            }
        }
        ds.put_vara_all(tt, &[z0, 0, 0], &[z1 - z0, 6, 8], &vals)
            .unwrap();

        // Records: partition each record along y.
        let yper = 6u64.div_ceil(nprocs as u64);
        let y0 = (c.rank() as u64 * yper).min(6);
        let y1 = ((c.rank() as u64 + 1) * yper).min(6);
        for r in 0..3u64 {
            let mut rec = Vec::new();
            for y in y0..y1 {
                for x in 0..8 {
                    rec.push(ts_value(r, y, x));
                }
            }
            ds.put_vara_all(ts, &[r, y0, 0], &[1, y1 - y0, 8], &rec)
                .unwrap();
        }
        ds.close().unwrap();
    });
    pfs.open("id.nc").unwrap().to_bytes()
}

#[test]
fn parallel_file_is_byte_identical_to_serial() {
    let reference = serial_bytes();
    assert!(reference.len() > 32, "reference file has data");
    for nprocs in [1, 2, 3, 4] {
        let par = parallel_bytes(nprocs);
        assert_eq!(
            par.len(),
            reference.len(),
            "file size mismatch with {nprocs} ranks"
        );
        assert_eq!(par, reference, "byte mismatch with {nprocs} ranks");
    }
}

#[test]
fn serial_reads_parallel_file() {
    // Write with 4 ranks, read with the serial library.
    let bytes = parallel_bytes(4);
    let mut f = NcFile::open(MemStore::from_bytes(bytes)).unwrap();
    let tt = f.var_id("tt").unwrap();
    let ts = f.var_id("ts").unwrap();
    assert_eq!(f.numrecs(), 3);
    let v: f32 = f.get_var1(tt, &[3, 5, 7]).unwrap();
    assert_eq!(v, tt_value(3, 5, 7));
    let r: f64 = f.get_var1(ts, &[2, 4, 1]).unwrap();
    assert_eq!(r, ts_value(2, 4, 1));
    assert_eq!(
        f.get_gatt("title").unwrap(),
        &pnetcdf::AttrValue::Char("identity".into())
    );
}

#[test]
fn parallel_reads_serial_file() {
    // Write with the serial library, read with 3 ranks collectively.
    let bytes = serial_bytes();
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    pfs.create("ser.nc").import_bytes(&bytes);
    run_world(3, cfg(), move |c| {
        let mut ds = Dataset::open(c, &pfs, "ser.nc", true, &Info::new()).unwrap();
        let tt = ds.inq_varid("tt").unwrap();
        let ts = ds.inq_varid("ts").unwrap();
        assert_eq!(ds.numrecs(), 3);

        // Each rank reads a different z plane.
        let z = c.rank() as u64;
        let plane: Vec<f32> = ds.get_vara_all(tt, &[z, 0, 0], &[1, 6, 8]).unwrap();
        let mut expect = Vec::new();
        for y in 0..6 {
            for x in 0..8 {
                expect.push(tt_value(z, y, x));
            }
        }
        assert_eq!(plane, expect);

        // And one record element each, independently.
        ds.begin_indep_data().unwrap();
        let v: f64 = ds.get_var1(ts, &[1, c.rank() as u64, 2]).unwrap();
        assert_eq!(v, ts_value(1, c.rank() as u64, 2));
        ds.end_indep_data().unwrap();
        ds.close().unwrap();
    });
}

#[test]
fn collective_and_independent_writes_produce_identical_files() {
    let write = |independent: bool| -> Vec<u8> {
        let pfs = Pfs::new(cfg(), StorageMode::Full);
        let pfs2 = pfs.clone();
        run_world(4, cfg(), move |c| {
            let mut ds = Dataset::create(c, &pfs2, "x.nc", Version::Cdf1, &Info::new()).unwrap();
            let z = ds.def_dim("z", 8).unwrap();
            let y = ds.def_dim("y", 10).unwrap();
            let v = ds.def_var("a", NcType::Int, &[z, y]).unwrap();
            ds.enddef().unwrap();
            let z0 = c.rank() as u64 * 2;
            let vals: Vec<i32> = (0..20).map(|i| (z0 * 10) as i32 + i).collect();
            if independent {
                ds.begin_indep_data().unwrap();
                ds.put_vara(v, &[z0, 0], &[2, 10], &vals).unwrap();
                ds.end_indep_data().unwrap();
            } else {
                ds.put_vara_all(v, &[z0, 0], &[2, 10], &vals).unwrap();
            }
            ds.close().unwrap();
        });
        pfs.open("x.nc").unwrap().to_bytes()
    };
    assert_eq!(write(false), write(true));
}

#[test]
fn exported_file_reimports_through_host_fs() {
    // Full circle through a real file on disk.
    let bytes = parallel_bytes(2);
    let dir = std::env::temp_dir().join("pnetcdf_identity_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.nc");
    std::fs::write(&path, &bytes).unwrap();

    let mut f = NcFile::open(netcdf_serial::StdFileStore::open(&path).unwrap()).unwrap();
    let tt = f.var_id("tt").unwrap();
    let v: f32 = f.get_var1(tt, &[0, 0, 0]).unwrap();
    assert_eq!(v, tt_value(0, 0, 0));
    std::fs::remove_file(&path).unwrap();
}
