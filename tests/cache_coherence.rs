//! End-to-end behavior of the client page cache: netCDF-style coherence
//! (independent writes become visible at sync points, not before),
//! eviction under a tiny budget, write-behind surviving injected faults,
//! and the cached write path retiring the sieve's read-modify-write reads.

use hpc_sim::{FaultPlan, SimConfig};
use pnetcdf::{Dataset, Info, NcType, Version};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

fn profiled_cfg() -> SimConfig {
    let cfg = SimConfig::test_small();
    cfg.profile.set_enabled(true);
    cfg
}

fn cached_info() -> Info {
    Info::new().with("pnc_cache", "enable")
}

/// Rank 0 writes independently while rank 1 holds the region in its cache.
/// netCDF promises nothing until a sync point — and the write-behind cache
/// makes the "nothing" deterministic: rank 0's bytes live only in its own
/// cache until `end_indep_data`, so rank 1 re-reads its stale value no
/// matter how the threads interleave. After the sync point both ranks must
/// see the new data.
#[test]
fn independent_write_visible_after_sync_not_before() {
    let cfg = profiled_cfg();
    let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
    let pfs2 = pfs.clone();
    let n = 64u64;
    run_world(2, cfg.clone(), move |c| {
        let mut ds = Dataset::create(c, &pfs2, "coh.nc", Version::Cdf1, &cached_info()).unwrap();
        let d = ds.def_dim("x", n).unwrap();
        let v = ds.def_var("vv", NcType::Float, &[d]).unwrap();
        ds.enddef().unwrap();

        // Baseline contents, written collectively by rank 0 (two-phase
        // writes land on the PFS directly and bump the coherence epoch).
        let base: Vec<f32> = (0..n).map(|i| i as f32).collect();
        if c.rank() == 0 {
            ds.put_vara_all(v, &[0], &[n], &base).unwrap();
        } else {
            ds.put_vara_all::<f32>(v, &[0], &[0], &[]).unwrap();
        }

        ds.begin_indep_data().unwrap();
        if c.rank() == 1 {
            // Cache the whole variable, then re-read: both reads must see
            // the baseline, whatever rank 0 is doing concurrently.
            let got: Vec<f32> = ds.get_vara(v, &[0], &[n]).unwrap();
            assert_eq!(got, base);
            let again: Vec<f32> = ds.get_vara(v, &[0], &[n]).unwrap();
            assert_eq!(again, base, "no visibility before the sync point");
        } else {
            // These bytes stay in rank 0's cache until the sync point.
            let new: Vec<f32> = (0..n).map(|i| (1000 + i) as f32).collect();
            ds.put_vara(v, &[0], &[n], &new).unwrap();
        }
        // Sync point: rank 0 flushes (write-behind) and bumps the epoch;
        // rank 1 notices and drops its clean pages.
        ds.end_indep_data().unwrap();

        let got: Vec<f32> = ds.get_vara_all(v, &[0], &[n]).unwrap();
        let want: Vec<f32> = (0..n).map(|i| (1000 + i) as f32).collect();
        assert_eq!(got, want, "sync point must publish rank 0's writes");
        ds.close().unwrap();
    });
    let c = cfg.profile.cache_counters();
    assert!(c.hits > 0, "rank 1's re-read must hit its cache: {c:?}");
    assert!(
        c.write_behind_bytes > 0,
        "rank 0's independent writes must flush via write-behind: {c:?}"
    );
    assert!(
        c.invalidations > 0,
        "the epoch change must invalidate rank 1's pages: {c:?}"
    );
}

/// A 2-page budget against a 16 KiB working set: the cache must evict
/// (flushing dirty victims) and still produce exactly the right bytes.
#[test]
fn eviction_under_tiny_budget_preserves_data() {
    let cfg = profiled_cfg();
    let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
    let pfs2 = pfs.clone();
    let n = 4096u64; // 16 KiB of f32
    let info = cached_info()
        .with("pnc_page_size", "1024")
        .with("pnc_cache_size", "2048");
    run_world(1, cfg.clone(), move |c| {
        let mut ds = Dataset::create(c, &pfs2, "ev.nc", Version::Cdf1, &info).unwrap();
        let d = ds.def_dim("x", n).unwrap();
        let v = ds.def_var("vv", NcType::Float, &[d]).unwrap();
        ds.enddef().unwrap();
        ds.begin_indep_data().unwrap();
        for chunk in 0..(n / 128) {
            let vals: Vec<f32> = (0..128).map(|i| (chunk * 128 + i) as f32).collect();
            ds.put_vara(v, &[chunk * 128], &[128], &vals).unwrap();
        }
        let got: Vec<f32> = ds.get_vara(v, &[0], &[n]).unwrap();
        let want: Vec<f32> = (0..n).map(|i| i as f32).collect();
        assert_eq!(got, want);
        ds.end_indep_data().unwrap();
        ds.close().unwrap();
    });
    let c = cfg.profile.cache_counters();
    assert!(c.evictions > 0, "2 KiB budget must evict: {c:?}");
    assert!(c.write_behind_bytes > 0, "dirty victims must flush: {c:?}");
}

/// Transient and short faults while the cache is flushing: the retry layer
/// must absorb them, so a cached faulty run produces the same file as a
/// cached clean run — the dirty page survives the failed attempt.
#[test]
fn write_behind_survives_transient_faults() {
    fn run(spec: Option<&str>) -> (Vec<u8>, SimConfig) {
        let mut b = SimConfig::test_small().builder();
        if let Some(s) = spec {
            b = b.faults(FaultPlan::from_spec(s).unwrap());
        }
        let cfg = b.build();
        cfg.profile.set_enabled(true);
        let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
        let pfs2 = pfs.clone();
        run_world(2, cfg.clone(), move |c| {
            let mut ds = Dataset::create(c, &pfs2, "wb.nc", Version::Cdf1, &cached_info()).unwrap();
            let d = ds.def_dim("x", 512).unwrap();
            let v = ds.def_var("vv", NcType::Double, &[d]).unwrap();
            ds.enddef().unwrap();
            ds.begin_indep_data().unwrap();
            let lo = c.rank() as u64 * 256;
            let vals: Vec<f64> = (0..256).map(|i| (lo + i) as f64 * 0.5).collect();
            ds.put_vara(v, &[lo], &[256], &vals).unwrap();
            ds.end_indep_data().unwrap();
            ds.close().unwrap();
        });
        (pfs.open("wb.nc").unwrap().to_bytes(), cfg)
    }
    let (clean, _) = run(None);
    let (faulty, cfg) = run(Some("transient=0.2,short=0.2"));
    assert_eq!(faulty, clean, "recovered flushes must not corrupt bytes");
    let f = cfg.profile.fault_counters();
    assert!(f.faults_injected > 0, "spec must actually inject: {f:?}");
    assert!(
        f.retries + f.short_completions > 0,
        "recovery must run: {f:?}"
    );
    assert_eq!(f.exhausted, 0, "no retry budget may run out: {f:?}");
    let c = cfg.profile.cache_counters();
    assert!(
        c.write_behind_bytes > 0,
        "flushes must go write-behind: {c:?}"
    );
}

/// The sieve's read-modify-write tax, retired: consecutive overlapping
/// strided writes through the *uncached* sieve re-read the sieve window
/// from the PFS on every access, while the cached path issues no server
/// reads at all for the same pattern — and a later partial-page get costs
/// exactly one page-granular server read.
#[test]
fn cached_writes_retire_sieve_rmw_reads() {
    fn run(cached: bool) -> (u64, u64, SimConfig) {
        let cfg = profiled_cfg();
        let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
        let pfs2 = pfs.clone();
        let stats = pfs.stats().clone();
        let stats_in = stats.clone();
        let info = if cached {
            cached_info().with("pnc_page_size", "4096")
        } else {
            Info::new()
        };
        run_world(1, cfg.clone(), move |c| {
            let mut ds = Dataset::create(c, &pfs2, "rmw.nc", Version::Cdf1, &info).unwrap();
            let d = ds.def_dim("x", 2048).unwrap();
            let v = ds.def_var("vv", NcType::Float, &[d]).unwrap();
            ds.enddef().unwrap();
            ds.begin_indep_data().unwrap();
            let before = stats_in.snapshot().io_bytes_read;
            // Strided overlapping pattern: every write straddles bytes the
            // previous one populated, so the sieve must RMW each window.
            for i in 0..32u64 {
                let vals = vec![i as f32; 96];
                ds.put_vara(v, &[i * 32], &[96], &vals).unwrap();
            }
            let after_writes = stats_in.snapshot().io_bytes_read;
            // One small get spanning a single page.
            let _: Vec<f32> = ds.get_vara(v, &[8], &[16]).unwrap();
            let after_read = stats_in.snapshot().io_bytes_read;
            ds.end_indep_data().unwrap();
            ds.close().unwrap();
            // Report via the closure's captured atomics (stats is shared).
            assert!(after_read >= after_writes && after_writes >= before);
        });
        let snap = stats.snapshot();
        (snap.io_bytes_read, cfg.profile.cache_counters().hits, cfg)
    }
    let (uncached_reads, _, _) = run(false);
    let (cached_reads, cached_hits, _) = run(true);
    assert!(
        uncached_reads > 0,
        "the sieve path must RMW-read on overlapping strided writes"
    );
    // The cached path never reads for writes; its only server read is the
    // single page-granular fill for the one get (the variable data starts
    // inside the header page, so at most two pages are touched).
    assert!(
        cached_reads <= 2 * 4096,
        "cached read traffic must be page-granular: {cached_reads} bytes"
    );
    assert!(
        cached_reads < uncached_reads,
        "cache must retire RMW reads ({cached_reads} vs {uncached_reads})"
    );
    assert!(cached_hits > 0);
}

/// Whole-workload identity: the same mixed independent/collective workload
/// with the cache on and off must leave identical file bytes.
#[test]
fn cached_and_uncached_files_are_identical() {
    fn run(info: Info) -> Vec<u8> {
        let cfg = SimConfig::test_small();
        let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
        let pfs2 = pfs.clone();
        run_world(4, cfg, move |c| {
            let mut ds = Dataset::create(c, &pfs2, "id.nc", Version::Cdf1, &info).unwrap();
            let d = ds.def_dim("x", 1024).unwrap();
            let v = ds.def_var("vv", NcType::Float, &[d]).unwrap();
            let w = ds.def_var("ww", NcType::Int, &[d]).unwrap();
            ds.enddef().unwrap();
            let lo = c.rank() as u64 * 256;
            let vals: Vec<f32> = (0..256).map(|i| (lo + i) as f32).collect();
            ds.put_vara_all(v, &[lo], &[256], &vals).unwrap();
            ds.begin_indep_data().unwrap();
            let ints: Vec<i32> = (0..256).map(|i| (lo + i) as i32).collect();
            // Two halves so the cache coalesces them in write-behind.
            ds.put_vara(w, &[lo], &[128], &ints[..128]).unwrap();
            ds.put_vara(w, &[lo + 128], &[128], &ints[128..]).unwrap();
            ds.end_indep_data().unwrap();
            let got: Vec<f32> = ds.get_vara_all(v, &[(lo + 256) % 1024], &[256]).unwrap();
            assert_eq!(got[0], ((lo + 256) % 1024) as f32);
            ds.close().unwrap();
        });
        pfs.open("id.nc").unwrap().to_bytes()
    }
    let plain = run(Info::new());
    let cached = run(cached_info());
    let tiny = run(cached_info()
        .with("pnc_page_size", "512")
        .with("pnc_cache_size", "1024"));
    assert!(!plain.is_empty());
    assert_eq!(cached, plain);
    assert_eq!(tiny, plain, "evicting cache must preserve identity");
}
