//! Structural invariants of the event-tracing subsystem: spans are
//! well-formed, per-rank PHASE timelines are monotonic, ServiceEngine disk
//! spans nest inside their queue-residency containers, and trace ids
//! survive the core → mpio → pfs crossings (including the rendezvous
//! parcel hop, where thread-locals cannot carry them).

use std::collections::{HashMap, HashSet};

use hpc_sim::trace::events::layer;
use hpc_sim::{SimConfig, Span, TraceSnapshot};
use pnetcdf::{Dataset, Info, NcType, Version};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

const NPROCS: usize = 4;
const PER_RANK: u64 = 300;
const CHUNKS: u64 = 3;

/// Run the nonblocking FLASH-like workload (several iputs merged by one
/// `wait_all`, then a collective read back) with `pnc_trace_events=enable`
/// through the hint path, and return the recorded spans.
fn traced_run() -> TraceSnapshot {
    let cfg = SimConfig::test_small();
    let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
    // Small cb_buffer forces several pipelined rounds per window.
    let info = Info::new()
        .with("cb_buffer_size", "512")
        .with("pnc_cb_pipeline", "enable")
        .with("pnc_trace_events", "enable");
    run_world(NPROCS, cfg.clone(), move |comm| {
        let mut ds = Dataset::create(comm, &pfs, "t.nc", Version::Cdf1, &info).unwrap();
        let d = ds.def_dim("x", NPROCS as u64 * PER_RANK).unwrap();
        let v = ds.def_var("v", NcType::Float, &[d]).unwrap();
        ds.enddef().unwrap();
        let r = comm.rank() as u64;
        let chunk = PER_RANK / CHUNKS;
        for i in 0..CHUNKS {
            let start = r * PER_RANK + i * chunk;
            let count = if i == CHUNKS - 1 {
                PER_RANK - i * chunk
            } else {
                chunk
            };
            let vals: Vec<f32> = (0..count).map(|j| (start + j) as f32).collect();
            ds.iput_vara(v, &[start], &[count], &vals).unwrap();
        }
        ds.wait_all().unwrap();
        let peer = ((r + 1) % NPROCS as u64) * PER_RANK;
        let req = ds.iget_vara(v, &[peer], &[PER_RANK]).unwrap();
        ds.wait_all().unwrap();
        let _: Vec<f32> = ds.take_result(req).unwrap();
        ds.close().unwrap();
    });
    cfg.events.snapshot()
}

/// Index nonzero span ids; ids are unique across the whole trace.
fn by_id(spans: &[Span]) -> HashMap<u64, &Span> {
    let mut out = HashMap::new();
    for s in spans.iter().filter(|s| s.id != 0) {
        assert!(
            out.insert(s.id, s).is_none(),
            "span id {} issued twice",
            s.id
        );
    }
    out
}

#[test]
fn spans_are_balanced_and_ranks_monotonic() {
    let snap = traced_run();
    assert!(!snap.spans.is_empty(), "traced run must record spans");
    // Every begin has a matching end: spans are recorded complete, and no
    // span may end before it begins.
    for s in &snap.spans {
        assert!(
            s.begin <= s.end,
            "span {} on rank {} ends ({}) before it begins ({})",
            s.name,
            s.rank,
            s.end,
            s.begin
        );
        assert!(s.rank < NPROCS, "span rank {} out of range", s.rank);
    }
    by_id(&snap.spans); // id uniqueness
                        // Per-rank PHASE timelines advance monotonically in recording order:
                        // a rank's virtual clock never runs backwards.
    for r in 0..NPROCS {
        let mut last = 0u64;
        for s in snap
            .spans
            .iter()
            .filter(|s| s.rank == r && s.layer == layer::PHASE)
        {
            assert!(
                s.begin >= last,
                "rank {r} PHASE span {} begins at {} after a span beginning at {last}",
                s.name,
                s.begin
            );
            last = s.begin;
        }
    }
}

#[test]
fn disk_spans_nest_inside_queue_containers() {
    let snap = traced_run();
    let ids = by_id(&snap.spans);
    let disks: Vec<&Span> = snap.spans.iter().filter(|s| s.name == "srv_disk").collect();
    assert!(
        !disks.is_empty(),
        "the run must reach the server disk stage"
    );
    for d in disks {
        let c = ids
            .get(&d.parent)
            .unwrap_or_else(|| panic!("srv_disk span has no parent container ({})", d.parent));
        assert!(
            c.name == "srv_read" || c.name == "srv_write",
            "srv_disk parent is {}, not a queue-residency container",
            c.name
        );
        assert!(
            c.begin <= d.begin && d.end <= c.end,
            "disk span [{}, {}] escapes its queue container [{}, {}]",
            d.begin,
            d.end,
            c.begin,
            c.end
        );
    }
    // The NIC stage nests the same way.
    for n in snap.spans.iter().filter(|s| s.name == "srv_nic") {
        let c = ids[&n.parent];
        assert!(c.begin <= n.begin && n.end <= c.end);
    }
}

#[test]
fn trace_ids_survive_core_mpio_pfs_crossing() {
    let snap = traced_run();
    let spans = &snap.spans;
    // Core: the merged flushes and the queued requests linked to them.
    let flush_ids: HashSet<u64> = spans
        .iter()
        .filter(|s| s.name == "flush_put" || s.name == "flush_get")
        .map(|s| s.id)
        .collect();
    assert!(!flush_ids.is_empty(), "wait_all must record flush spans");
    assert!(
        spans
            .iter()
            .any(|s| s.name == "iput" && flush_ids.contains(&s.parent)),
        "queued iputs must link to the flush that carried them"
    );
    // Core → mpio: the per-rank collective spans parent to the flush ids,
    // which crossed the rendezvous inside the request parcels.
    let coll_ids: HashSet<u64> = spans
        .iter()
        .filter(|s| {
            (s.name == "coll_write" || s.name == "coll_read") && flush_ids.contains(&s.parent)
        })
        .map(|s| s.id)
        .collect();
    assert!(
        !coll_ids.is_empty(),
        "coll spans must parent to core flush ids across the parcel hop"
    );
    // mpio: two-phase windows under the collective spans.
    let win_ids: HashSet<u64> = spans
        .iter()
        .filter(|s| s.name == "window" && coll_ids.contains(&s.parent))
        .map(|s| s.id)
        .collect();
    assert!(!win_ids.is_empty(), "windows must parent to coll spans");
    // mpio → pfs: server containers under the windows, disk under those.
    let srv_ids: HashSet<u64> = spans
        .iter()
        .filter(|s| (s.name == "srv_write" || s.name == "srv_read") && win_ids.contains(&s.parent))
        .map(|s| s.id)
        .collect();
    assert!(
        !srv_ids.is_empty(),
        "server containers must parent to window ids"
    );
    assert!(
        spans
            .iter()
            .any(|s| s.name == "srv_disk" && srv_ids.contains(&s.parent)),
        "a disk stage span must complete the iput → disk chain"
    );
}

#[test]
fn chrome_export_is_wellformed() {
    let snap = traced_run();
    let chrome = snap.to_chrome();
    let events = match chrome.get("traceEvents") {
        Some(hpc_sim::trace::Json::Arr(evs)) => evs,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!events.is_empty());
    let mut durations = 0usize;
    for e in events {
        match e.get("ph").and_then(|p| match p {
            hpc_sim::trace::Json::Str(s) => Some(s.clone()),
            _ => None,
        }) {
            Some(ph) if ph == "X" => {
                let dur = e.get("dur").and_then(hpc_sim::trace::Json::as_f64).unwrap();
                assert!(dur >= 0.0, "negative duration in Chrome export");
                durations += 1;
            }
            Some(ph) => assert!(
                ph == "M" || ph == "s" || ph == "f",
                "unexpected event phase {ph}"
            ),
            None => panic!("event without ph"),
        }
    }
    assert!(durations > 0, "export must carry complete spans");
}

#[test]
fn tracing_off_records_nothing() {
    let cfg = SimConfig::test_small();
    let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
    // No pnc_trace_events hint: the recorder must stay empty.
    let info = Info::new().with("cb_buffer_size", "512");
    run_world(NPROCS, cfg.clone(), move |comm| {
        let mut ds = Dataset::create(comm, &pfs, "t.nc", Version::Cdf1, &info).unwrap();
        let d = ds.def_dim("x", NPROCS as u64 * 8).unwrap();
        let v = ds.def_var("v", NcType::Float, &[d]).unwrap();
        ds.enddef().unwrap();
        let r = comm.rank() as u64;
        let vals: Vec<f32> = (0..8).map(|j| j as f32).collect();
        ds.iput_vara(v, &[r * 8], &[8], &vals).unwrap();
        ds.wait_all().unwrap();
        ds.close().unwrap();
    });
    assert!(
        cfg.events.snapshot().spans.is_empty(),
        "tracing off must record no spans"
    );
}
