//! Round-trips for the seven 3-D partitioning strategies of the paper's
//! Figure 5 (Z, Y, X, ZY, ZX, YX, ZYX): every rank writes its block of a
//! `tt(Z,Y,X)` array collectively, then the array is verified both through
//! a collective read with a different partition and through an untimed
//! whole-file check.

use hpc_sim::SimConfig;
use pnetcdf::{Dataset, Info, NcType, Version};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

fn cfg() -> SimConfig {
    SimConfig::test_small()
}

/// Which axes a partition splits.
#[derive(Clone, Copy, Debug)]
struct Split {
    z: bool,
    y: bool,
    x: bool,
}

const PARTITIONS: [(&str, Split); 7] = [
    (
        "Z",
        Split {
            z: true,
            y: false,
            x: false,
        },
    ),
    (
        "Y",
        Split {
            z: false,
            y: true,
            x: false,
        },
    ),
    (
        "X",
        Split {
            z: false,
            y: false,
            x: true,
        },
    ),
    (
        "ZY",
        Split {
            z: true,
            y: true,
            x: false,
        },
    ),
    (
        "ZX",
        Split {
            z: true,
            y: false,
            x: true,
        },
    ),
    (
        "YX",
        Split {
            z: false,
            y: true,
            x: true,
        },
    ),
    (
        "ZYX",
        Split {
            z: true,
            y: true,
            x: true,
        },
    ),
];

/// Factor `nprocs` across the split axes (most significant axis gets the
/// largest factor), returning per-axis process counts.
fn factors(nprocs: usize, split: Split) -> (u64, u64, u64) {
    let naxes = [split.z, split.y, split.x].iter().filter(|&&b| b).count();
    let mut remaining = nprocs as u64;
    let mut out = [1u64, 1, 1];
    let mut axes: Vec<usize> = Vec::new();
    if split.z {
        axes.push(0);
    }
    if split.y {
        axes.push(1);
    }
    if split.x {
        axes.push(2);
    }
    for (i, &a) in axes.iter().enumerate() {
        let left = naxes - i;
        // Greedy near-equal factorization.
        let mut f = (remaining as f64).powf(1.0 / left as f64).round() as u64;
        while f > 1 && remaining % f != 0 {
            f -= 1;
        }
        out[a] = f.max(1);
        remaining /= out[a];
    }
    out[*axes.last().unwrap()] *= remaining;
    (out[0], out[1], out[2])
}

/// This rank's (start, count) block of a (Z,Y,X) array.
fn block(
    rank: usize,
    (pz, py, px): (u64, u64, u64),
    (nz, ny, nx): (u64, u64, u64),
) -> ([u64; 3], [u64; 3]) {
    let r = rank as u64;
    let iz = r / (py * px);
    let iy = (r / px) % py;
    let ix = r % px;
    let szz = nz / pz;
    let szy = ny / py;
    let szx = nx / px;
    ([iz * szz, iy * szy, ix * szx], [szz, szy, szx])
}

fn value(z: u64, y: u64, x: u64) -> f32 {
    (z * 10000 + y * 100 + x) as f32
}

#[test]
fn all_seven_partitions_roundtrip() {
    let (nz, ny, nx) = (4u64, 4, 8);
    let nprocs = 4usize;
    for (name, split) in PARTITIONS {
        let p = factors(nprocs, split);
        assert_eq!(p.0 * p.1 * p.2, nprocs as u64, "partition {name}");
        let pfs = Pfs::new(cfg(), StorageMode::Full);
        let pfs2 = pfs.clone();
        run_world(nprocs, cfg(), move |c| {
            let mut ds = Dataset::create(c, &pfs2, "p.nc", Version::Cdf1, &Info::new()).unwrap();
            let z = ds.def_dim("z", nz).unwrap();
            let y = ds.def_dim("y", ny).unwrap();
            let x = ds.def_dim("x", nx).unwrap();
            let v = ds.def_var("tt", NcType::Float, &[z, y, x]).unwrap();
            ds.enddef().unwrap();

            let (start, count) = block(c.rank(), p, (nz, ny, nx));
            let mut vals = Vec::new();
            for dz in 0..count[0] {
                for dy in 0..count[1] {
                    for dx in 0..count[2] {
                        vals.push(value(start[0] + dz, start[1] + dy, start[2] + dx));
                    }
                }
            }
            ds.put_vara_all(v, &start, &count, &vals).unwrap();

            // Read back with the *transposed* role: every rank reads one z
            // plane regardless of how it wrote.
            let zplane = c.rank() as u64 % nz;
            let plane: Vec<f32> = ds.get_vara_all(v, &[zplane, 0, 0], &[1, ny, nx]).unwrap();
            for (i, &got) in plane.iter().enumerate() {
                let yy = i as u64 / nx;
                let xx = i as u64 % nx;
                assert_eq!(got, value(zplane, yy, xx), "partition {name}");
            }
            ds.close().unwrap();
        });

        // Whole-file verification of every element.
        let bytes = pfs.open("p.nc").unwrap().to_bytes();
        let mut f =
            netcdf_serial::NcFile::open(netcdf_serial::MemStore::from_bytes(bytes)).unwrap();
        let v = f.var_id("tt").unwrap();
        let all: Vec<f32> = f.get_var(v).unwrap();
        let mut i = 0;
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    assert_eq!(all[i], value(z, y, x), "partition {name} at ({z},{y},{x})");
                    i += 1;
                }
            }
        }
    }
}

#[test]
fn partitioned_read_after_partitioned_write() {
    // Write with ZY partition, read with X partition — cross-pattern.
    let (nz, ny, nx) = (4u64, 4, 4);
    let nprocs = 4usize;
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    let pw = factors(
        nprocs,
        Split {
            z: true,
            y: true,
            x: false,
        },
    );
    let pr = factors(
        nprocs,
        Split {
            z: false,
            y: false,
            x: true,
        },
    );
    run_world(nprocs, cfg(), move |c| {
        let mut ds = Dataset::create(c, &pfs, "c.nc", Version::Cdf1, &Info::new()).unwrap();
        let z = ds.def_dim("z", nz).unwrap();
        let y = ds.def_dim("y", ny).unwrap();
        let x = ds.def_dim("x", nx).unwrap();
        let v = ds.def_var("tt", NcType::Float, &[z, y, x]).unwrap();
        ds.enddef().unwrap();

        let (start, count) = block(c.rank(), pw, (nz, ny, nx));
        let mut vals = Vec::new();
        for dz in 0..count[0] {
            for dy in 0..count[1] {
                for dx in 0..count[2] {
                    vals.push(value(start[0] + dz, start[1] + dy, start[2] + dx));
                }
            }
        }
        ds.put_vara_all(v, &start, &count, &vals).unwrap();

        let (rs, rc) = block(c.rank(), pr, (nz, ny, nx));
        let got: Vec<f32> = ds.get_vara_all(v, &rs, &rc).unwrap();
        let mut i = 0;
        for dz in 0..rc[0] {
            for dy in 0..rc[1] {
                for dx in 0..rc[2] {
                    assert_eq!(got[i], value(rs[0] + dz, rs[1] + dy, rs[2] + dx));
                    i += 1;
                }
            }
        }
        ds.close().unwrap();
    });
}
