//! Byte-identity of the fused zero-copy byte path against the old staged
//! path: the fused gather+swap (`convert::pack_to_external`) and fused
//! swap+scatter (`convert::unpack_from_external`) must produce bit-identical
//! results to pack-then-swap / swap-then-unpack for every external type,
//! memory stride, and the full stack must write identical files whichever
//! path carries the bytes — including record variables and the nonblocking
//! merge engine.

use hpc_sim::SimConfig;
use pnetcdf::convert;
use pnetcdf::{Dataset, Datatype, Info, NcType, Version};
use pnetcdf_mpi::pack::{pack, unpack};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};
use proptest::collection::vec;
use proptest::prelude::*;

fn cfg() -> SimConfig {
    SimConfig::test_small()
}

fn arb_nctype() -> impl Strategy<Value = NcType> {
    prop_oneof![
        Just(NcType::Byte),
        Just(NcType::Char),
        Just(NcType::Short),
        Just(NcType::Int),
        Just(NcType::Float),
        Just(NcType::Double),
    ]
}

/// Fused vs staged, on raw native element bytes (endianness swapping is
/// pure byte shuffling, so random bit patterns — NaNs included — are fair
/// game here).
fn check_pack_identity(t: NcType, memtype: &Datatype, count: usize, buf: &[u8]) {
    let fused = convert::pack_to_external(buf, count, memtype, t).unwrap();
    let staged = convert::native_to_external(&pack(buf, count, memtype).unwrap(), t);
    assert_eq!(fused, staged, "fused pack diverged for {t:?}");

    // And the inverse: fused scatter restores what staged scatter does.
    let mut via_fused = vec![0xAAu8; buf.len()];
    let mut via_staged = vec![0xAAu8; buf.len()];
    let used = convert::unpack_from_external(&fused, &mut via_fused, count, memtype, t).unwrap();
    let native = convert::external_to_native(&staged, t);
    let used2 = unpack(&native, &mut via_staged, count, memtype).unwrap();
    assert_eq!(used, used2);
    assert_eq!(via_fused, via_staged, "fused unpack diverged for {t:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Element-aligned strided memory: every segment is a whole number of
    /// elements, so the fused path takes its per-segment branch.
    #[test]
    fn fused_matches_staged_aligned(
        t in arb_nctype(),
        n in 1usize..48,
        gap_elems in 0usize..3,
        seed in any::<u8>(),
    ) {
        let w = t.size() as usize;
        let stride = (w * (1 + gap_elems)) as i64;
        let memtype = Datatype::vector(n, w, stride, Datatype::byte());
        let buf: Vec<u8> = (0..memtype.extent() as usize)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect();
        check_pack_identity(t, &memtype, 1, &buf);
    }

    /// Segments deliberately *smaller* than one element (half-width blocks)
    /// force the gather-then-convert fallback inside `pack_with`; the
    /// result must still be bit-identical.
    #[test]
    fn fused_matches_staged_straddling(
        t in prop_oneof![Just(NcType::Short), Just(NcType::Int), Just(NcType::Double)],
        n in 1usize..24,
        seed in any::<u8>(),
    ) {
        let w = t.size() as usize;
        let half = w / 2;
        // 2n half-element blocks with a one-byte gap: segment lengths are
        // never a multiple of the element width.
        let memtype = Datatype::vector(2 * n, half, (half + 1) as i64, Datatype::byte());
        let buf: Vec<u8> = (0..memtype.extent() as usize)
            .map(|i| (i as u8).wrapping_mul(17).wrapping_add(seed))
            .collect();
        check_pack_identity(t, &memtype, 1, &buf);
    }

    /// Multiple datatype instances (count > 1) with random payloads.
    #[test]
    fn fused_matches_staged_multi_count(
        t in arb_nctype(),
        count in 1usize..5,
        n in 1usize..16,
        bytes in vec(any::<u8>(), 0..64),
    ) {
        let w = t.size() as usize;
        let memtype = Datatype::vector(n, w, (w * 2) as i64, Datatype::byte());
        let need = memtype.extent() as usize * count;
        let mut buf: Vec<u8> = bytes;
        buf.resize(need.max(buf.len()), 0x5C);
        check_pack_identity(t, &memtype, count, &buf[..need]);
    }
}

/// Full stack, record variable: a strided flexible write from
/// noncontiguous memory must leave the file byte-identical to the typed
/// path writing the same values.
#[test]
fn record_var_flexible_write_is_byte_identical() {
    let write = |flexible: bool| -> Vec<u8> {
        let pfs = Pfs::new(cfg(), StorageMode::Full);
        let pfs2 = pfs.clone();
        run_world(2, cfg(), move |c| {
            let mut ds = Dataset::create(c, &pfs2, "r.nc", Version::Cdf1, &Info::new()).unwrap();
            let t = ds.def_dim("time", 0).unwrap();
            let x = ds.def_dim("x", 8).unwrap();
            let v = ds.def_var("tt", NcType::Double, &[t, x]).unwrap();
            ds.enddef().unwrap();
            // Each rank writes two records, every other column.
            let start = [c.rank() as u64 * 2, 0];
            let count = [2, 4];
            let stride = [1, 2];
            let vals: Vec<f64> = (0..8).map(|i| c.rank() as f64 * 100.0 + i as f64).collect();
            if flexible {
                // Noncontiguous memory too: 8 doubles spread over a
                // 16-double buffer (every other slot).
                let mut buf = vec![0u8; 16 * 8];
                for (i, v) in vals.iter().enumerate() {
                    buf[i * 16..i * 16 + 8].copy_from_slice(&v.to_ne_bytes());
                }
                let mem = Datatype::vector(8, 8, 16, Datatype::byte());
                ds.put_vars_all_flexible(v, &start, &count, &stride, &buf, 1, &mem)
                    .unwrap();
            } else {
                ds.put_vars_all(v, &start, &count, &stride, &vals).unwrap();
            }
            ds.close().unwrap();
        });
        pfs.open("r.nc").unwrap().to_bytes()
    };
    assert_eq!(write(true), write(false));
}

/// Full stack, independent mode: strided independent writes go through the
/// data-sieving read-modify-write path; fused and typed must agree.
#[test]
fn independent_sieved_flexible_write_is_byte_identical() {
    let write = |flexible: bool| -> Vec<u8> {
        let pfs = Pfs::new(cfg(), StorageMode::Full);
        let pfs2 = pfs.clone();
        run_world(2, cfg(), move |c| {
            let mut ds = Dataset::create(c, &pfs2, "i.nc", Version::Cdf1, &Info::new()).unwrap();
            let z = ds.def_dim("z", 4).unwrap();
            let x = ds.def_dim("x", 16).unwrap();
            let v = ds.def_var("a", NcType::Int, &[z, x]).unwrap();
            ds.enddef().unwrap();
            ds.begin_indep_data().unwrap();
            let start = [c.rank() as u64 * 2, 1];
            let count = [2, 5];
            let stride = [1, 3];
            let vals: Vec<i32> = (0..10).map(|i| c.rank() as i32 * 1000 + i).collect();
            if flexible {
                let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_ne_bytes()).collect();
                let mem = Datatype::contiguous(10, Datatype::int());
                ds.put_vars_flexible(v, &start, &count, &stride, &bytes, 1, &mem)
                    .unwrap();
            } else {
                ds.put_vars(v, &start, &count, &stride, &vals).unwrap();
            }
            ds.end_indep_data().unwrap();
            ds.close().unwrap();
        });
        pfs.open("i.nc").unwrap().to_bytes()
    };
    assert_eq!(write(true), write(false));
}

/// Nonblocking merge engine: queued flexible puts flushed by `wait_all`
/// (the zero-copy cross-request merge) produce the same file as blocking
/// typed puts, and a queued flexible get scatters the same values back.
#[test]
fn nonblocking_merge_is_byte_identical() {
    let write = |nonblocking: bool| -> Vec<u8> {
        let pfs = Pfs::new(cfg(), StorageMode::Full);
        let pfs2 = pfs.clone();
        run_world(2, cfg(), move |c| {
            let mut ds = Dataset::create(c, &pfs2, "n.nc", Version::Cdf1, &Info::new()).unwrap();
            let x = ds.def_dim("x", 32).unwrap();
            let v = ds.def_var("a", NcType::Float, &[x]).unwrap();
            ds.enddef().unwrap();
            let base = c.rank() as u64 * 16;
            let vals: Vec<f32> = (0..8).map(|i| (base + i) as f32 * 1.5).collect();
            let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_ne_bytes()).collect();
            let mem = Datatype::contiguous(8, Datatype::float());
            if nonblocking {
                // Two queued halves merge into one coalesced put.
                let r1 = ds
                    .iput_vara_flexible(
                        v,
                        &[base],
                        &[4],
                        &bytes[..16],
                        1,
                        &Datatype::contiguous(4, Datatype::float()),
                    )
                    .unwrap();
                let r2 = ds
                    .iput_vara_flexible(
                        v,
                        &[base + 4],
                        &[4],
                        &bytes[16..],
                        1,
                        &Datatype::contiguous(4, Datatype::float()),
                    )
                    .unwrap();
                ds.wait_all().unwrap();
                let _ = (r1, r2);
            } else {
                ds.put_vara_all_flexible(v, &[base], &[8], &bytes, 1, &mem)
                    .unwrap();
            }
            // Read back through the fused scatter and check values.
            let mut back = vec![0u8; 32];
            ds.get_vara_all_flexible(v, &[base], &[8], &mut back, 1, &mem)
                .unwrap();
            assert_eq!(back, bytes);
            ds.close().unwrap();
        });
        pfs.open("n.nc").unwrap().to_bytes()
    };
    assert_eq!(write(true), write(false));
}
