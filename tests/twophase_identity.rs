//! Property-based identity of the two collective engines: for arbitrary
//! run lists, the pipelined round engine (`pnc_cb_pipeline=enable`) must
//! leave exactly the same bytes in the file — and return exactly the same
//! bytes to readers — as the serial exchange-then-access engine, at the
//! MPI-IO layer and through PnetCDF's nonblocking `wait_all` path. Also
//! exercises the request-parcel codec round-trip the engines share.

use proptest::collection::vec;
use proptest::prelude::*;

use hpc_sim::SimConfig;
use pnetcdf::{Dataset, Info, NcType, Version};
use pnetcdf_mpi::run_world;
use pnetcdf_mpio::twophase::{decode_req, encode_read_req, encode_write_req};
use pnetcdf_mpio::{MpiFile, OpenMode, Run};
use pnetcdf_pfs::{Pfs, StorageMode};

/// Sorted, disjoint, nonempty run lists within a small region.
fn arb_runs() -> impl Strategy<Value = Vec<Run>> {
    vec((0u64..700, 1u64..50), 1..10).prop_map(|mut raw| {
        raw.sort();
        let mut out: Vec<Run> = Vec::new();
        let mut next_free = 0u64;
        for (off, len) in raw {
            let off = off.max(next_free) + 1; // strictly disjoint with gaps
            out.push((off, len));
            next_free = off + len;
        }
        out
    })
}

fn data_for(runs: &[Run], seed: u8) -> Vec<u8> {
    let total: u64 = runs.iter().map(|r| r.1).sum();
    (0..total)
        .map(|i| (i as u8).wrapping_mul(41).wrapping_add(seed))
        .collect()
}

/// Give each rank a private region so concurrent writes stay defined;
/// regions still interleave across aggregator file domains.
fn rebase(per_rank: &[Vec<Run>]) -> Vec<Vec<Run>> {
    per_rank
        .iter()
        .enumerate()
        .map(|(r, runs)| {
            let base = r as u64 * 2048;
            let mut next_free = base;
            runs.iter()
                .map(|&(off, len)| {
                    let o = (base + off).max(next_free);
                    next_free = o + len;
                    (o, len)
                })
                .collect()
        })
        .collect()
}

fn hints(cb_buffer: usize, pipeline: bool) -> Info {
    let info = Info::new().with("cb_buffer_size", &cb_buffer.to_string());
    if pipeline {
        info.with("pnc_cb_pipeline", "enable")
    } else {
        info.with("pnc_cb_pipeline", "disable")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parcel_codec_roundtrips(runs in arb_runs(), seed in any::<u8>(), trace_id in any::<u64>()) {
        let data = data_for(&runs, seed);
        let write_parcel = encode_write_req(&runs, &data, trace_id);
        let (r2, d2, id2) = decode_req(&write_parcel).unwrap();
        prop_assert_eq!(&r2, &runs);
        prop_assert_eq!(d2, &data[..]);
        prop_assert_eq!(id2, trace_id);
        let read_parcel = encode_read_req(&runs, trace_id);
        let (r3, d3, id3) = decode_req(&read_parcel).unwrap();
        prop_assert_eq!(&r3, &runs);
        prop_assert!(d3.is_empty());
        prop_assert_eq!(id3, trace_id);
    }

    #[test]
    fn pipelined_write_bytes_equal_serial(
        per_rank in vec(arb_runs(), 3..5),
        cb_buffer in 16usize..384,
    ) {
        let cfg = SimConfig::test_small();
        let n = per_rank.len();
        let rank_runs = rebase(&per_rank);

        let write = |pipeline: bool| {
            let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
            let pfs_in = pfs.clone();
            let rank_runs = rank_runs.clone();
            let info = hints(cb_buffer, pipeline);
            run_world(n, cfg.clone(), move |c| {
                let f = MpiFile::open(c, &pfs_in, "t", OpenMode::Create, &info).unwrap();
                let runs = &rank_runs[c.rank()];
                let data = data_for(runs, c.rank() as u8);
                f.write_runs_at_all(runs, &data).unwrap();
            });
            pfs.open("t").unwrap().to_bytes()
        };
        prop_assert_eq!(write(true), write(false));
    }

    #[test]
    fn pipelined_read_bytes_equal_serial(
        per_rank in vec(arb_runs(), 3..5),
        cb_buffer in 16usize..384,
    ) {
        let cfg = SimConfig::test_small();
        let n = per_rank.len();
        let rank_runs = rebase(&per_rank);
        let max_end = rank_runs.iter().flatten().map(|&(o, l)| o + l).max().unwrap();
        let content: Vec<u8> = (0..max_end).map(|i| (i % 249) as u8).collect();

        let read = |pipeline: bool| {
            let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
            pfs.create("t").import_bytes(&content);
            let rank_runs = rank_runs.clone();
            let info = hints(cb_buffer, pipeline);
            let run = run_world(n, cfg.clone(), move |c| {
                let f = MpiFile::open(c, &pfs, "t", OpenMode::ReadOnly, &info).unwrap();
                f.read_runs_at_all(&rank_runs[c.rank()]).unwrap()
            });
            run.results
        };
        let pipelined = read(true);
        let serial = read(false);
        prop_assert_eq!(&pipelined, &serial);
        // Both must also be the seeded pattern.
        for (rank, runs) in rank_runs.iter().enumerate() {
            let mut want = Vec::new();
            for &(off, len) in runs {
                want.extend_from_slice(&content[off as usize..(off + len) as usize]);
            }
            prop_assert_eq!(&pipelined[rank], &want);
        }
    }
}

/// The engines must also agree end to end through PnetCDF: aggregated
/// nonblocking puts flushed by one `wait_all`, then read back — same file
/// bytes, same values, under both hint settings.
#[test]
fn wait_all_results_identical_across_engines() {
    const NPROCS: usize = 4;
    const PER_RANK: u64 = 300; // not stripe-aligned: ragged domains
    const CHUNKS: u64 = 3;
    let cfg = SimConfig::test_small();

    let run = |pipeline: bool| {
        let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
        let pfs_in = pfs.clone();
        let info = hints(512, pipeline);
        let run = run_world(NPROCS, cfg.clone(), move |comm| {
            let mut ds = Dataset::create(comm, &pfs_in, "id.nc", Version::Cdf1, &info).unwrap();
            let d = ds.def_dim("x", NPROCS as u64 * PER_RANK).unwrap();
            let v = ds.def_var("v", NcType::Float, &[d]).unwrap();
            ds.enddef().unwrap();
            let r = comm.rank() as u64;
            // Several queued puts per rank, merged by one wait_all.
            let chunk = PER_RANK / CHUNKS;
            for i in 0..CHUNKS {
                let start = r * PER_RANK + i * chunk;
                let count = if i == CHUNKS - 1 {
                    PER_RANK - i * chunk
                } else {
                    chunk
                };
                let vals: Vec<f32> = (0..count).map(|j| (start + j) as f32).collect();
                ds.iput_vara(v, &[start], &[count], &vals).unwrap();
            }
            ds.wait_all().unwrap();
            // Read the neighbour's slice back collectively.
            let peer = ((r + 1) % NPROCS as u64) * PER_RANK;
            let req = ds.iget_vara(v, &[peer], &[PER_RANK]).unwrap();
            ds.wait_all().unwrap();
            let got: Vec<f32> = ds.take_result(req).unwrap();
            ds.close().unwrap();
            got
        });
        (pfs.open("id.nc").unwrap().to_bytes(), run.results)
    };

    let (bytes_p, vals_p) = run(true);
    let (bytes_s, vals_s) = run(false);
    assert_eq!(bytes_p, bytes_s, "engines wrote different file bytes");
    assert_eq!(vals_p, vals_s, "engines returned different get results");
    for (rank, got) in vals_p.iter().enumerate() {
        let peer = ((rank as u64 + 1) % NPROCS as u64) * PER_RANK;
        let want: Vec<f32> = (0..PER_RANK).map(|j| (peer + j) as f32).collect();
        assert_eq!(got, &want, "rank {rank} read wrong values");
    }
}
