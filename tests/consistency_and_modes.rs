//! Semantic guards: define/data/independent mode enforcement, cross-rank
//! consistency checking at `enddef`, and error propagation.

use hpc_sim::SimConfig;
use pnetcdf::{DataMode, Dataset, Info, NcType, NcmpiError, Version};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

fn cfg() -> SimConfig {
    SimConfig::test_small()
}

#[test]
fn inconsistent_definitions_detected_at_enddef() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    let run = run_world(4, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "bad.nc", Version::Cdf1, &Info::new()).unwrap();
        // Rank 2 defines a different dimension length.
        let len = if c.rank() == 2 { 5 } else { 4 };
        ds.def_dim("x", len).unwrap();
        ds.def_var("a", NcType::Int, &[0]).unwrap();
        matches!(ds.enddef(), Err(NcmpiError::InconsistentDefinitions))
    });
    assert!(run.results.iter().all(|&detected| detected));
}

#[test]
fn consistent_definitions_pass_enddef() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(4, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "ok.nc", Version::Cdf1, &Info::new()).unwrap();
        ds.def_dim("x", 4).unwrap();
        ds.def_var("a", NcType::Int, &[0]).unwrap();
        ds.enddef().unwrap();
        assert_eq!(ds.mode(), DataMode::Collective);
        ds.close().unwrap();
    });
}

#[test]
fn define_mode_rules() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(2, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "m.nc", Version::Cdf1, &Info::new()).unwrap();
        assert_eq!(ds.mode(), DataMode::Define);
        let x = ds.def_dim("x", 2).unwrap();
        let v = ds.def_var("a", NcType::Int, &[x]).unwrap();
        // Data access in define mode fails.
        assert!(matches!(
            ds.put_vara_all::<i32>(v, &[0], &[2], &[1, 2]),
            Err(NcmpiError::InDefineMode)
        ));
        assert!(matches!(ds.sync(), Err(NcmpiError::InDefineMode)));
        ds.enddef().unwrap();
        // Define calls now fail.
        assert!(matches!(
            ds.def_dim("y", 3),
            Err(NcmpiError::NotInDefineMode)
        ));
        assert!(matches!(
            ds.put_gatt_text("t", "x"),
            Err(NcmpiError::NotInDefineMode)
        ));
        // redef re-enables them.
        ds.redef().unwrap();
        ds.def_dim("y", 3).unwrap();
        ds.enddef().unwrap();
        ds.close().unwrap();
    });
}

#[test]
fn data_mode_switching() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(2, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "sw.nc", Version::Cdf1, &Info::new()).unwrap();
        let x = ds.def_dim("x", 4).unwrap();
        let v = ds.def_var("a", NcType::Int, &[x]).unwrap();
        ds.enddef().unwrap();

        // end_indep without begin_indep fails.
        assert!(ds.end_indep_data().is_err());
        ds.begin_indep_data().unwrap();
        assert_eq!(ds.mode(), DataMode::Independent);
        // begin twice fails.
        assert!(ds.begin_indep_data().is_err());
        ds.put_vara(v, &[(c.rank() * 2) as u64], &[2], &[1i32, 2])
            .unwrap();
        ds.end_indep_data().unwrap();
        assert_eq!(ds.mode(), DataMode::Collective);
        ds.close().unwrap();
    });
}

#[test]
fn open_nonexistent_fails_everywhere() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    let run = run_world(3, cfg(), |c| {
        Dataset::open(c, &pfs, "missing.nc", true, &Info::new()).is_err()
    });
    assert!(run.results.iter().all(|&e| e));
}

#[test]
fn create_same_name_twice_truncates() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(2, cfg(), |c| {
        {
            let mut ds = Dataset::create(c, &pfs, "t.nc", Version::Cdf1, &Info::new()).unwrap();
            let x = ds.def_dim("x", 2).unwrap();
            let v = ds.def_var("a", NcType::Int, &[x]).unwrap();
            ds.enddef().unwrap();
            ds.put_vara_all(v, &[0], &[2], &[7i32, 8]).unwrap();
            ds.close().unwrap();
        }
        {
            let mut ds = Dataset::create(c, &pfs, "t.nc", Version::Cdf1, &Info::new()).unwrap();
            let x = ds.def_dim("x", 2).unwrap();
            let v = ds.def_var("b", NcType::Int, &[x]).unwrap();
            ds.enddef().unwrap();
            // Old variable is gone; data reads as zero until written.
            assert!(ds.inq_varid("a").is_err());
            let z: Vec<i32> = ds.get_vara_all(v, &[0], &[2]).unwrap();
            assert_eq!(z, vec![0, 0]);
            ds.close().unwrap();
        }
    });
}

#[test]
fn invalid_argument_errors() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(1, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "e.nc", Version::Cdf1, &Info::new()).unwrap();
        let x = ds.def_dim("x", 4).unwrap();
        let v = ds.def_var("a", NcType::Int, &[x]).unwrap();
        // Bad names and dims at definition time.
        assert!(ds.def_dim("bad name", 1).is_err());
        assert!(ds.def_var("v2", NcType::Int, &[99]).is_err());
        ds.enddef().unwrap();
        // Count/value mismatch.
        assert!(matches!(
            ds.put_vara_all::<i32>(v, &[0], &[3], &[1, 2]),
            Err(NcmpiError::InvalidArgument(_))
        ));
        // Unknown variable id.
        assert!(ds.get_vara_all::<i32>(9, &[0], &[1]).is_err());
        // Rank mismatch.
        assert!(ds.put_vara_all::<i32>(v, &[0, 0], &[1, 1], &[1]).is_err());
        ds.close().unwrap();
    });
}

#[test]
fn dataset_usable_across_many_collective_rounds() {
    // Stress the rendezvous reuse through a realistic op sequence.
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(4, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "many.nc", Version::Cdf1, &Info::new()).unwrap();
        let x = ds.def_dim("x", 64).unwrap();
        let v = ds.def_var("a", NcType::Int, &[x]).unwrap();
        ds.enddef().unwrap();
        for round in 0..25 {
            let s = (c.rank() * 16) as u64;
            let vals: Vec<i32> = (0..16).map(|i| round * 100 + i).collect();
            ds.put_vara_all(v, &[s], &[16], &vals).unwrap();
            let back: Vec<i32> = ds.get_vara_all(v, &[s], &[16]).unwrap();
            assert_eq!(back, vals);
        }
        ds.close().unwrap();
    });
}
