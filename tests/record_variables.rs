//! Record (unlimited-dimension) variable behaviour: interleaved layout,
//! growth, numrecs reconciliation across ranks, multi-variable records.

use hpc_sim::SimConfig;
use pnetcdf::{Dataset, Info, NcType, Version};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

fn cfg() -> SimConfig {
    SimConfig::test_small()
}

#[test]
fn records_interleave_on_disk() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(1, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "r.nc", Version::Cdf1, &Info::new()).unwrap();
        let t = ds.def_dim("time", 0).unwrap();
        let x = ds.def_dim("x", 2).unwrap();
        let a = ds.def_var("a", NcType::Int, &[t, x]).unwrap();
        let b = ds.def_var("b", NcType::Int, &[t, x]).unwrap();
        ds.enddef().unwrap();
        for r in 0..3u64 {
            ds.put_vara_all(a, &[r, 0], &[1, 2], &[(10 * r) as i32, (10 * r + 1) as i32])
                .unwrap();
            ds.put_vara_all(
                b,
                &[r, 0],
                &[1, 2],
                &[(100 * r) as i32, (100 * r + 1) as i32],
            )
            .unwrap();
        }
        ds.close().unwrap();
    });

    // On disk: a record of `a` then a record of `b`, repeating.
    let bytes = pfs.open("r.nc").unwrap().to_bytes();
    let mut f = netcdf_serial::NcFile::open(netcdf_serial::MemStore::from_bytes(bytes)).unwrap();
    let layout = f.layout();
    assert_eq!(
        layout.recsize, 16,
        "two vars x 2 ints each = 16 bytes/record"
    );
    let a = f.var_id("a").unwrap();
    let b = f.var_id("b").unwrap();
    let va: Vec<i32> = f.get_var(a).unwrap();
    assert_eq!(va, vec![0, 1, 10, 11, 20, 21]);
    let vb: Vec<i32> = f.get_var(b).unwrap();
    assert_eq!(vb, vec![0, 1, 100, 101, 200, 201]);
}

#[test]
fn collective_record_growth_reconciles_numrecs() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(4, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "g.nc", Version::Cdf1, &Info::new()).unwrap();
        let t = ds.def_dim("time", 0).unwrap();
        let x = ds.def_dim("x", 4).unwrap();
        let v = ds.def_var("ts", NcType::Double, &[t, x]).unwrap();
        ds.enddef().unwrap();

        // Each rank writes a different record: rank r writes record r.
        let r = c.rank() as u64;
        ds.put_vara_all(v, &[r, 0], &[1, 4], &[r as f64; 4])
            .unwrap();
        // After the collective write every rank agrees on numrecs.
        assert_eq!(ds.numrecs(), 4);

        // A later record leaves a gap; numrecs covers it.
        ds.put_vara_all(v, &[7, 0], &[1, 4], &[70.0; 4]).unwrap();
        assert_eq!(ds.numrecs(), 8);

        // Unwritten record reads as zeros.
        let gap: Vec<f64> = ds.get_vara_all(v, &[5, 0], &[1, 4]).unwrap();
        assert_eq!(gap, vec![0.0; 4]);
        ds.close().unwrap();
    });
}

#[test]
fn independent_record_growth_reconciles_at_end_indep() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(3, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "i.nc", Version::Cdf1, &Info::new()).unwrap();
        let t = ds.def_dim("time", 0).unwrap();
        let v = ds.def_var("s", NcType::Int, &[t]).unwrap();
        ds.enddef().unwrap();
        ds.begin_indep_data().unwrap();
        // Rank r writes record 2r; local numrecs views diverge.
        let r = c.rank() as u64;
        ds.put_vara(v, &[2 * r], &[1], &[r as i32]).unwrap();
        ds.end_indep_data().unwrap();
        // Reconciled to the max: last record is 4, so numrecs = 5.
        assert_eq!(ds.numrecs(), 5);
        let all: Vec<i32> = ds.get_vara_all(v, &[0], &[5]).unwrap();
        assert_eq!(all, vec![0, 0, 1, 0, 2]);
        ds.close().unwrap();
    });
}

#[test]
fn numrecs_persists_through_close_and_open() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(2, cfg(), |c| {
        {
            let mut ds = Dataset::create(c, &pfs, "n.nc", Version::Cdf1, &Info::new()).unwrap();
            let t = ds.def_dim("time", 0).unwrap();
            let v = ds.def_var("s", NcType::Short, &[t]).unwrap();
            ds.enddef().unwrap();
            ds.put_vara_all(v, &[(c.rank() * 3) as u64], &[3], &[1i16, 2, 3])
                .unwrap();
            ds.close().unwrap();
        }
        {
            let mut ds = Dataset::open(c, &pfs, "n.nc", true, &Info::new()).unwrap();
            assert_eq!(ds.numrecs(), 6);
            let (name, len) = ds.inq_dim(0).unwrap();
            assert_eq!(name, "time");
            assert_eq!(len, 6);
            let all: Vec<i16> = ds.get_vara_all(0, &[0], &[6]).unwrap();
            assert_eq!(all, vec![1, 2, 3, 1, 2, 3]);
            ds.close().unwrap();
        }
    });
}

#[test]
fn record_reads_past_numrecs_fail() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(2, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "b.nc", Version::Cdf1, &Info::new()).unwrap();
        let t = ds.def_dim("time", 0).unwrap();
        let v = ds.def_var("s", NcType::Int, &[t]).unwrap();
        ds.enddef().unwrap();
        ds.put_vara_all(v, &[0], &[2], &[1, 2]).unwrap();
        assert!(ds.get_vara_all::<i32>(v, &[2], &[1]).is_err());
        ds.close().unwrap();
    });
}

#[test]
fn mixed_fixed_and_record_vars() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(2, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "mix.nc", Version::Cdf1, &Info::new()).unwrap();
        let t = ds.def_dim("time", 0).unwrap();
        let x = ds.def_dim("x", 4).unwrap();
        let fixed = ds.def_var("grid", NcType::Float, &[x]).unwrap();
        let rec = ds.def_var("series", NcType::Float, &[t, x]).unwrap();
        ds.enddef().unwrap();

        let half = (c.rank() * 2) as u64;
        ds.put_vara_all(fixed, &[half], &[2], &[half as f32, half as f32 + 1.0])
            .unwrap();
        for r in 0..2u64 {
            ds.put_vara_all(
                rec,
                &[r, half],
                &[1, 2],
                &[r as f32 * 10.0, r as f32 * 10.0 + 1.0],
            )
            .unwrap();
        }

        let g: Vec<f32> = ds.get_vara_all(fixed, &[0], &[4]).unwrap();
        assert_eq!(g, vec![0.0, 1.0, 2.0, 3.0]);
        let s: Vec<f32> = ds.get_vara_all(rec, &[1, 0], &[1, 4]).unwrap();
        assert_eq!(s, vec![10.0, 11.0, 10.0, 11.0]);
        ds.close().unwrap();
    });
}
