//! Fill mode semantics: `set_fill` prefills fixed variables at `enddef`,
//! `fill_var_rec` prefills records, `_FillValue` overrides the default.

use hpc_sim::SimConfig;
use pnetcdf::{AttrValue, Dataset, Info, NcType, Version};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

fn cfg() -> SimConfig {
    SimConfig::test_small()
}

#[test]
fn enddef_prefills_fixed_vars() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(3, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "f.nc", Version::Cdf1, &Info::new()).unwrap();
        ds.set_fill(true).unwrap();
        let x = ds.def_dim("x", 10).unwrap();
        let vi = ds.def_var("ints", NcType::Int, &[x]).unwrap();
        let vf = ds.def_var("floats", NcType::Float, &[x]).unwrap();
        ds.enddef().unwrap();

        // Unwritten cells hold NC_FILL values, not zeros.
        let ints: Vec<i32> = ds.get_vara_all(vi, &[0], &[10]).unwrap();
        assert_eq!(ints, vec![-2147483647; 10]);
        let floats: Vec<f32> = ds.get_vara_all(vf, &[0], &[10]).unwrap();
        assert!(floats.iter().all(|&f| f > 9.9e36));

        // Writes overlay the fill.
        ds.put_vara_all(vi, &[(c.rank() * 3) as u64], &[3], &[1, 2, 3])
            .unwrap();
        let ints: Vec<i32> = ds.get_vara_all(vi, &[0], &[10]).unwrap();
        assert_eq!(&ints[..9], &[1, 2, 3, 1, 2, 3, 1, 2, 3]);
        assert_eq!(ints[9], -2147483647);
        ds.close().unwrap();
    });
}

#[test]
fn fill_value_attribute_overrides_default() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(2, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "o.nc", Version::Cdf1, &Info::new()).unwrap();
        ds.set_fill(true).unwrap();
        let x = ds.def_dim("x", 6).unwrap();
        let v = ds.def_var("a", NcType::Short, &[x]).unwrap();
        ds.put_vatt(v, "_FillValue", AttrValue::Short(vec![-9]))
            .unwrap();
        ds.enddef().unwrap();
        let vals: Vec<i16> = ds.get_vara_all(v, &[0], &[6]).unwrap();
        assert_eq!(vals, vec![-9; 6]);
        ds.close().unwrap();
    });
}

#[test]
fn fill_var_rec_prefills_one_record() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(2, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "r.nc", Version::Cdf1, &Info::new()).unwrap();
        let t = ds.def_dim("time", 0).unwrap();
        let x = ds.def_dim("x", 8).unwrap();
        let v = ds.def_var("s", NcType::Double, &[t, x]).unwrap();
        ds.enddef().unwrap();

        // Prefill record 2 (creating records 0..3), then write half of it.
        ds.fill_var_rec(v, 2).unwrap();
        assert_eq!(ds.numrecs(), 3);
        ds.put_vara_all(v, &[2, (c.rank() * 2) as u64], &[1, 2], &[1.0, 2.0])
            .unwrap();
        let rec: Vec<f64> = ds.get_vara_all(v, &[2, 0], &[1, 8]).unwrap();
        assert_eq!(&rec[..4], &[1.0, 2.0, 1.0, 2.0]);
        assert!(
            rec[4..].iter().all(|&f| f > 9.9e36),
            "unwritten half is fill"
        );

        // fill_var_rec on a fixed variable is an error.
        let mut ds2 = Dataset::create(c, &pfs, "r2.nc", Version::Cdf1, &Info::new()).unwrap();
        let y = ds2.def_dim("y", 4).unwrap();
        let w = ds2.def_var("w", NcType::Int, &[y]).unwrap();
        ds2.enddef().unwrap();
        assert!(ds2.fill_var_rec(w, 0).is_err());
        ds2.close().unwrap();
        ds.close().unwrap();
    });
}

#[test]
fn set_fill_requires_define_mode_and_returns_old() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(1, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "m.nc", Version::Cdf1, &Info::new()).unwrap();
        assert!(!ds.fill_mode());
        assert!(!ds.set_fill(true).unwrap());
        assert!(ds.set_fill(true).unwrap());
        ds.def_dim("x", 2).unwrap();
        ds.enddef().unwrap();
        assert!(ds.set_fill(false).is_err(), "data mode rejects set_fill");
        ds.close().unwrap();
    });
}

#[test]
fn redef_prefills_only_new_variables() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    run_world(2, cfg(), |c| {
        let mut ds = Dataset::create(c, &pfs, "n.nc", Version::Cdf1, &Info::new()).unwrap();
        ds.set_fill(true).unwrap();
        let x = ds.def_dim("x", 4).unwrap();
        let old = ds.def_var("old", NcType::Int, &[x]).unwrap();
        ds.enddef().unwrap();
        ds.put_vara_all(old, &[(c.rank() * 2) as u64], &[2], &[5, 6])
            .unwrap();

        ds.redef().unwrap();
        let fresh = ds.def_var("fresh", NcType::Int, &[x]).unwrap();
        ds.enddef().unwrap();

        // The existing variable keeps its data; the new one is fill.
        let o: Vec<i32> = ds.get_vara_all(old, &[0], &[4]).unwrap();
        assert_eq!(o, vec![5, 6, 5, 6]);
        let f: Vec<i32> = ds.get_vara_all(fresh, &[0], &[4]).unwrap();
        assert_eq!(f, vec![-2147483647; 4]);
        ds.close().unwrap();
    });
}
