//! The `nc_prefetch_vars` hint (paper §4.1): named variables are read once
//! at open time and served from local memory afterwards.

use hpc_sim::{SimConfig, Time};
use pnetcdf::{Dataset, Info, NcType, Version};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

fn cfg() -> SimConfig {
    SimConfig::test_small()
}

fn make_file(pfs: &Pfs) {
    let pfs = pfs.clone();
    run_world(2, cfg(), move |c| {
        let mut ds = Dataset::create(c, &pfs, "f.nc", Version::Cdf1, &Info::new()).unwrap();
        let t = ds.def_dim("time", 0).unwrap();
        let x = ds.def_dim("x", 8).unwrap();
        let grid = ds.def_var("grid", NcType::Float, &[x]).unwrap();
        let aux = ds.def_var("aux", NcType::Int, &[x]).unwrap();
        let series = ds.def_var("series", NcType::Float, &[t, x]).unwrap();
        ds.enddef().unwrap();
        let s = c.rank() as u64 * 4;
        let f32s: Vec<f32> = (0..4).map(|i| (s + i) as f32).collect();
        let i32s: Vec<i32> = (0..4).map(|i| (s + i) as i32 * 10).collect();
        ds.put_vara_all(grid, &[s], &[4], &f32s).unwrap();
        ds.put_vara_all(aux, &[s], &[4], &i32s).unwrap();
        ds.put_vara_all(series, &[0, s], &[1, 4], &f32s).unwrap();
        ds.close().unwrap();
    });
}

#[test]
fn prefetched_reads_are_correct_and_local() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    make_file(&pfs);
    let pfs2 = pfs.clone();
    run_world(2, cfg(), move |c| {
        let info = Info::new().with("nc_prefetch_vars", "grid, aux, series, missing");
        let mut ds = Dataset::open(c, &pfs2, "f.nc", true, &info).unwrap();
        let grid = ds.inq_varid("grid").unwrap();
        let aux = ds.inq_varid("aux").unwrap();
        let series = ds.inq_varid("series").unwrap();
        assert!(ds.is_prefetched(grid));
        assert!(ds.is_prefetched(aux));
        // Record variables are never cached; unknown names are ignored.
        assert!(!ds.is_prefetched(series));

        // Cached reads return the right data...
        let g: Vec<f32> = ds.get_vara_all(grid, &[2], &[4]).unwrap();
        assert_eq!(g, vec![2.0, 3.0, 4.0, 5.0]);
        let a: Vec<i32> = ds.get_vara_all(aux, &[0], &[8]).unwrap();
        assert_eq!(a, (0..8).map(|i| i * 10).collect::<Vec<_>>());
        // ...including strided selections.
        let s: Vec<f32> = ds.get_vars_all(grid, &[0], &[4], &[2]).unwrap();
        assert_eq!(s, vec![0.0, 2.0, 4.0, 6.0]);
        // Bounds are still enforced on the cached path.
        assert!(ds.get_vara_all::<f32>(grid, &[6], &[4]).is_err());
        ds.close().unwrap();
    });
}

#[test]
fn cached_reads_cost_less_than_uncached() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    make_file(&pfs);

    let read_time = |info: Info| -> Time {
        let pfs = pfs.clone();
        pfs.reset_timing();
        let run = run_world(2, cfg(), move |c| {
            let mut ds = Dataset::open(c, &pfs, "f.nc", true, &info).unwrap();
            let grid = ds.inq_varid("grid").unwrap();
            // Many small reads — the access pattern the hint exists for.
            let t0 = c.now();
            for _ in 0..50 {
                let _: Vec<f32> = ds.get_vara_all(grid, &[0], &[8]).unwrap();
            }
            let t = c.now() - t0;
            ds.close().unwrap();
            t
        });
        run.results.into_iter().max().unwrap()
    };

    let cached = read_time(Info::new().with("nc_prefetch_vars", "grid"));
    let uncached = read_time(Info::new());
    assert!(
        cached.as_secs_f64() < uncached.as_secs_f64() / 5.0,
        "cached {cached} should be far below uncached {uncached}"
    );
}

#[test]
fn write_invalidates_cache() {
    let pfs = Pfs::new(cfg(), StorageMode::Full);
    make_file(&pfs);
    let pfs2 = pfs.clone();
    run_world(2, cfg(), move |c| {
        let info = Info::new().with("nc_prefetch_vars", "grid");
        let mut ds = Dataset::open(c, &pfs2, "f.nc", false, &info).unwrap();
        let grid = ds.inq_varid("grid").unwrap();
        assert!(ds.is_prefetched(grid));
        // A collective write drops the cache on every rank...
        ds.put_vara_all(grid, &[c.rank() as u64 * 4], &[4], &[9.0f32; 4])
            .unwrap();
        assert!(!ds.is_prefetched(grid));
        // ...and subsequent reads see the new data.
        let g: Vec<f32> = ds.get_vara_all(grid, &[0], &[8]).unwrap();
        assert_eq!(g, vec![9.0; 8]);
        ds.close().unwrap();
    });
}
