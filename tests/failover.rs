//! Server failover end to end through the netCDF API. The permanent crash
//! that ends the no-parity workload with an agreed `Exhausted` (see
//! `fault_injection.rs`) is survivable once `pnc_parity=enable` is in the
//! info: the retry ladder escalates to an agreed `ServerLost`, every rank
//! marks the server down at the same operation, and the collective retries
//! in degraded mode — redirected writes, reconstructed reads. A later
//! access past the crash window's restart rebuilds the server online.

use hpc_sim::{FaultPlan, SimConfig, Time};
use pnetcdf::{Dataset, Info, NcType, Version};
use pnetcdf_mpi::run_world;
use pnetcdf_pfs::{Pfs, StorageMode};

/// `test_small` with profiling on and the given fault spec applied.
fn faulty_cfg(spec: &str) -> SimConfig {
    let plan = FaultPlan::from_spec(spec).unwrap();
    // The multi-window spec syntax must round-trip through Display, or
    // profile reports would misstate the plan that actually ran.
    assert_eq!(FaultPlan::from_spec(&plan.to_string()).unwrap(), plan);
    let cfg = SimConfig::test_small().builder().faults(plan).build();
    cfg.profile.set_enabled(true);
    cfg
}

fn parity_info() -> Info {
    Info::new().with("pnc_parity", "enable")
}

/// The blocking collective path: a permanent crash mid-job completes
/// degraded instead of exhausting, and the degraded read-back is exact.
#[test]
fn blocking_collective_survives_permanent_crash() {
    let cfg = faulty_cfg("crash=server:0@t>1e9");
    let profile = cfg.profile.clone();
    let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
    let pfs2 = pfs.clone();
    run_world(4, cfg, move |c| {
        let mut ds = Dataset::create(c, &pfs2, "p.nc", Version::Cdf1, &parity_info()).unwrap();
        let x = ds.def_dim("x", 4096).unwrap();
        let v = ds.def_var("v", NcType::Float, &[x]).unwrap();
        ds.enddef().unwrap();
        // Past the outage start: the write must escalate to failover.
        c.advance(Time::from_secs_f64(2.0));
        let base = c.rank() as u64 * 1024;
        let vals: Vec<f32> = (0..1024).map(|i| (base + i) as f32).collect();
        ds.put_vara_all(v, &[base], &[1024], &vals)
            .expect("parity must carry the write through the crash");
        // Degraded read-back, shifted one rank over so every rank reads
        // bytes another rank wrote through the redirect path.
        let rb = ((c.rank() + 1) % 4) as u64 * 1024;
        let got: Vec<f32> = ds.get_vara_all(v, &[rb], &[1024]).unwrap();
        for (i, &g) in got.iter().enumerate() {
            assert_eq!(g, (rb + i as u64) as f32);
        }
        ds.close().expect("close flushes through degraded mode too");
    });
    assert_eq!(pfs.down_server(), Some(0), "server 0 must be marked down");
    let fo = profile.failover_counters();
    assert_eq!(fo.epochs, 1, "exactly one agreed epoch: {fo:?}");
    assert!(fo.redirected_writes > 0, "writes must redirect: {fo:?}");
    assert!(fo.degraded_reads > 0, "reads must reconstruct: {fo:?}");
    assert!(fo.parity_updates > 0, "parity must be maintained: {fo:?}");
    let fc = profile.fault_counters();
    assert!(fc.exhausted > 0, "the ladder exhausts before escalating");
    assert!(fc.agreed_errors > 0, "ServerLost must be agreed: {fc:?}");
}

/// The nonblocking/aggregated path (`iput` + `wait_all`), plus the online
/// rebuild: a crash window *with* a restart ends with the server rebuilt
/// and the file byte-identical to a fault-free run.
#[test]
fn wait_all_survives_and_rebuild_restores_the_server() {
    // Outage from t=1s to t=100s: far longer than the retry ladder
    // tolerates, so only failover can complete the flush.
    let cfg = faulty_cfg("crash=server:0@t>1e9,restart=1e11");
    let profile = cfg.profile.clone();
    let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
    let pfs2 = pfs.clone();
    run_world(4, cfg, move |c| {
        let mut ds = Dataset::create(c, &pfs2, "w.nc", Version::Cdf1, &parity_info()).unwrap();
        let x = ds.def_dim("x", 4096).unwrap();
        let v = ds.def_var("v", NcType::Int, &[x]).unwrap();
        ds.enddef().unwrap();
        c.advance(Time::from_secs_f64(2.0));
        let base = c.rank() as u64 * 1024;
        let vals: Vec<i32> = (0..1024).map(|i| (base + i) as i32).collect();
        ds.iput_vara(v, &[base], &[1024], &vals).unwrap();
        ds.wait_all()
            .expect("parity must carry the merged flush through the crash");
        ds.close().unwrap();
    });
    assert_eq!(pfs.down_server(), Some(0));
    let fo = profile.failover_counters();
    assert_eq!(fo.epochs, 1, "{fo:?}");
    assert!(fo.redirected_writes > 0, "{fo:?}");

    // First access past the restart triggers the online rebuild.
    let f = pfs.open("w.nc").unwrap();
    let degraded = f.to_bytes();
    let mut probe = [0u8; 1];
    f.try_read_at(Time::from_secs_f64(101.0), 0, &mut probe)
        .expect("post-restart read");
    assert_eq!(pfs.down_server(), None, "rebuild must clear the mark");
    let fo = profile.failover_counters();
    assert_eq!(fo.rebuilds, 1, "{fo:?}");
    assert!(fo.rebuilt_bytes > 0, "{fo:?}");
    assert_eq!(
        f.to_bytes(),
        degraded,
        "rebuild must not change the file contents"
    );
}

/// Graceful degradation the other way: with parity *off*, the same crash
/// spec still produces the agreed `Exhausted` of the seed behavior, and no
/// failover counter moves.
#[test]
fn without_parity_the_crash_still_exhausts() {
    let cfg = faulty_cfg("crash=server:0@t>1e9");
    let profile = cfg.profile.clone();
    let pfs = Pfs::new(cfg.clone(), StorageMode::Full);
    let pfs2 = pfs.clone();
    run_world(2, cfg, move |c| {
        let mut ds = Dataset::create(c, &pfs2, "n.nc", Version::Cdf1, &Info::new()).unwrap();
        let x = ds.def_dim("x", 2048).unwrap();
        let v = ds.def_var("v", NcType::Float, &[x]).unwrap();
        ds.enddef().unwrap();
        c.advance(Time::from_secs_f64(2.0));
        ds.put_vara_all(v, &[c.rank() as u64 * 1024], &[1024], &[1.0f32; 1024])
            .unwrap_err();
    });
    assert_eq!(pfs.down_server(), None, "no parity, no failover");
    assert_eq!(
        profile.failover_counters(),
        Default::default(),
        "parity-off runs must not touch failover counters"
    );
}
