//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! reimplements the subset of proptest that the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive`, range and tuple and `vec` and regex-string strategies,
//! `prop_oneof!`, `Just`, `any::<T>()`, and the `proptest!` test macro.
//!
//! Semantics differ from real proptest in one deliberate way: failing cases
//! are **not shrunk** — a failure panics with the generated inputs'
//! `Debug` rendering (via the ordinary `assert!` machinery). Generation is
//! fully deterministic: the RNG is seeded from the test-function name and
//! the case index, so failures reproduce across runs.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub mod strategy {
    pub use crate::{BoxedStrategy, Just, Strategy, Union};
}

/// Deterministic xorshift64* RNG used for all generation.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed the RNG; a zero seed is remapped to a fixed constant.
    pub fn new(seed: u64) -> TestRng {
        TestRng(if seed == 0 { 0x9e3779b97f4a7c15 } else { seed })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Run configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values — proptest's central abstraction, minus shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `self` is the leaf; `recurse` receives a
    /// strategy for the previous depth and builds the next. `depth` bounds
    /// the nesting (the size parameters of real proptest are accepted and
    /// ignored).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            cur = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        cur
    }

    /// Type-erase into a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A cheaply clonable type-erased strategy (`Arc`, not `Box`, so
/// `prop_recursive` closures can clone it).
pub struct BoxedStrategy<V>(Arc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

impl<V> fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from the (non-empty) list of alternatives.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

// ---- numeric ranges ---------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::unnecessary_cast)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::unnecessary_cast)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128 as u64;
                if span == 0 {
                    // Full-width inclusive range: any value.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::unnecessary_cast)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ---- tuples -----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);

// ---- collections ------------------------------------------------------------

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with uniformly chosen length in `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `Vec` of values from `elem`, length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

// ---- bool -------------------------------------------------------------------

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy producing each boolean with probability 1/2.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolStrategy;

    /// The canonical boolean strategy.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

// ---- any::<T>() -------------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::unnecessary_cast)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// `::std::primitive::bool` spelled out: the `bool` *module* above shadows
// the primitive's name in this scope.
impl Arbitrary for ::std::primitive::bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

// Finite floats only: the workspace's tests round-trip values through codecs
// and compare with `==`, which NaN would break spuriously.
impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        ((rng.unit_f64() - 0.5) * 2e12) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T` (`any::<i32>()` etc).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---- regex-lite string strategies -------------------------------------------

/// One element of a compiled string pattern.
#[derive(Clone, Debug)]
enum PatElem {
    /// Character alternatives with a `{min,max}` repetition count.
    Class {
        chars: Vec<char>,
        min: u32,
        max: u32,
    },
}

fn compile_pattern(pat: &str) -> Vec<PatElem> {
    let mut elems = Vec::new();
    let mut it = pat.chars().peekable();
    while let Some(c) = it.next() {
        let chars = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = it
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in {pat:?}"));
                    match c {
                        ']' => break,
                        '-' if prev.is_some() && it.peek().is_some_and(|&n| n != ']') => {
                            let hi = it.next().unwrap();
                            let lo = prev.take().unwrap();
                            // `lo` was already pushed as a single; extend the run.
                            for v in (lo as u32 + 1)..=(hi as u32) {
                                set.push(char::from_u32(v).unwrap());
                            }
                        }
                        c => {
                            set.push(c);
                            prev = Some(c);
                        }
                    }
                }
                set
            }
            '\\' => vec![it
                .next()
                .unwrap_or_else(|| panic!("dangling escape in {pat:?}"))],
            c => vec![c],
        };
        let (min, max) = if it.peek() == Some(&'{') {
            it.next();
            let mut spec = String::new();
            for c in it.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            let (lo, hi) = spec
                .split_once(',')
                .unwrap_or_else(|| panic!("unsupported quantifier {{{spec}}} in {pat:?}"));
            (lo.parse().unwrap(), hi.parse().unwrap())
        } else {
            (1, 1)
        };
        elems.push(PatElem::Class { chars, min, max });
    }
    elems
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        // Compiling on every case keeps the impl allocation-simple; the
        // patterns involved are a handful of characters.
        let elems = compile_pattern(self);
        let mut out = String::new();
        for PatElem::Class { chars, min, max } in &elems {
            let n = min + rng.below((max - min + 1) as u64) as u32;
            for _ in 0..n {
                out.push(chars[rng.below(chars.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---- prelude & macros -------------------------------------------------------

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection::vec as prop_vec;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// FNV-1a over the test name, for a per-test deterministic seed.
#[doc(hidden)]
pub fn seed_for(name: &str, case: u32) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Uniform choice among strategies (boxed under the hood).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert within a property (no shrinking: forwards to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discard the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// The property-test macro: declares `#[test]` functions whose arguments
/// are drawn from strategies. Each test runs `config.cases` deterministic
/// cases (seeded from the test name); failures panic with the generated
/// inputs visible in the assertion message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::TestRng::new($crate::seed_for(stringify!($name), case));
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let _case_result: ::core::result::Result<(), ()> = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(42);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = Strategy::generate(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn string_pattern_generates_matching_names() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let s = Strategy::generate(&"[A-Za-z_][A-Za-z0-9_]{0,14}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 15, "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_', "{s:?}");
            assert!(
                s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::new(9);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[Strategy::generate(&s, &mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let s = crate::collection::vec(0u64..10, 2..5);
        let mut rng = TestRng::new(11);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        fn leaves_in_range(t: &Tree) -> bool {
            match t {
                Tree::Leaf(v) => *v < 255,
                Tree::Node(a, b) => leaves_in_range(a) && leaves_in_range(b),
            }
        }
        let s = (0u8..255)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::new(13);
        for _ in 0..100 {
            let t = Strategy::generate(&s, &mut rng);
            assert!(depth(&t) <= 3);
            assert!(leaves_in_range(&t));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn the_macro_itself_works(
            (a, b) in (0u64..100, 0u64..100),
            flip in crate::bool::ANY,
            v in crate::collection::vec(any::<i32>(), 0..8),
        ) {
            prop_assume!(a + b < 190);
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!(v.len(), v.len());
            let _ = flip;
        }
    }
}
