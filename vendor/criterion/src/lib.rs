//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! provides the subset of criterion's API the workspace's benches use
//! (`Criterion`, benchmark groups, `BenchmarkId`, `Throughput`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros).
//! It measures wall-clock time over a fixed warmup + sample loop and prints
//! a one-line summary per benchmark — no statistics, plots, or baselines.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<P: fmt::Display>(function_name: impl Into<String>, parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    samples: u32,
    /// Mean time per iteration of the last `iter` call.
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for warmup + `samples` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std_black_box(f()); // warmup
        let start = Instant::now();
        for _ in 0..self.samples {
            std_black_box(f());
        }
        self.elapsed = start.elapsed() / self.samples;
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Single benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        let group_name = name.to_string();
        run_one(&group_name, "", None, 10, f);
        self
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).max(1);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_one(
            &self.name,
            &id.to_string(),
            self.throughput,
            self.sample_size,
            f,
        );
    }

    /// Benchmark a closure that receives an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(
            &self.name,
            &id.name,
            self.throughput,
            self.sample_size,
            |b| f(b, input),
        );
    }

    /// End the group (reporting is incremental, so this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    throughput: Option<Throughput>,
    samples: u32,
    mut f: F,
) {
    let mut b = Bencher {
        samples,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let label = if id.is_empty() {
        group.to_string()
    } else {
        format!("{group}/{id}")
    };
    let per_iter = b.elapsed;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            format!(" {:>8.1} MB/s", n as f64 / per_iter.as_secs_f64() / 1e6)
        }
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            format!(" {:>8.1} Kelem/s", n as f64 / per_iter.as_secs_f64() / 1e3)
        }
        _ => String::new(),
    };
    println!("bench {label:<48} {per_iter:>12.2?}/iter{rate}");
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs_closures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("f", |b| b.iter(|| runs += 1));
        g.bench_with_input(BenchmarkId::new("g2", 7), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
        // warmup + 3 samples
        assert_eq!(runs, 4);
    }
}
