//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of `parking_lot`'s API the workspace uses — `Mutex`
//! with a non-poisoning `lock()` and `Condvar` with `wait(&mut guard)` —
//! implemented over `std::sync`. Poisoned std locks are recovered
//! transparently (parking_lot has no poisoning).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner std guard lives in an `Option` so [`Condvar::wait`] can move it
/// out (std's `wait` consumes the guard) and put it back; it is only `None`
/// transiently inside `wait`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable with `parking_lot`'s in-place `wait(&mut guard)`.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and wait for a notification,
    /// re-acquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during wait");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_guards_data() {
        let m = Arc::new(Mutex::new(0usize));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let waiter = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    }
}
